// Canonical ball engine: hash-consed colour-refinement keys for radius-r
// views (Section 3.1's τ_r balls).
//
// For the properly edge-coloured trees-with-loops of the Section 4
// construction (property (P3)), the radius-r view of a node is decided by
// iterated colour refinement: define
//
//     k_0(v) = K_leaf,
//     k_d(v) = H( sorted loop colours of v,
//                 sorted (colour(e), k_{d-1}(u)) over non-loop ends e = vu ),
//
// then k_r(v) = k_r(w) iff τ_r(G, v) ≅ τ_r(H, w) — on trees the depth-r
// view tree *is* the ball (a tree is its own universal cover), and the
// recursion is exactly the AHU canonical form of that view tree, folded
// into a 128-bit FNV-1a key instead of an unbounded string. Hot-path
// isomorphism checks become O(1) key compares; the propagation-based check
// stays available as an oracle (LDLB_BALL_ORACLE=1, see isomorphism.cpp).
//
// Every distinct signature (loop colours + (colour, child) list) is
// *interned* once in a global table, so the engine structure-shares across
// levels: a level-L+1 graph is a lift/mix of level-L graphs and its sub-ball
// signatures are already interned — computing its witness key is mostly
// table hits, not re-encoding. Keys are content-derived (chained from child
// *keys*, not table ids), hence stable across processes, serialisable, and
// shippable across the wire.
//
// Memory sits under the same budget as the legacy encoding memo
// (LDLB_BALL_CACHE_BYTES): per-(graph, node, radius) key memo entries evict
// LRU; the interned signature table resets wholesale under pressure —
// memoized keys stay valid across a reset because they are content-derived.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "ldlb/graph/multigraph.hpp"
#include "ldlb/util/checksum.hpp"

namespace ldlb {

/// Canonical key of τ_radius(g, v), or nullopt when `g` is not a properly
/// edge-coloured tree-with-loops (keys decide rooted ball isomorphism only
/// on that shape; callers fall back to propagation elsewhere).
[[nodiscard]] std::optional<Checksum128> canonical_ball_key(const Multigraph& g,
                                                            NodeId v,
                                                            int radius);

/// Telemetry counters for the engine (monotone since process start except
/// the byte gauges). `collisions` counts interned signatures whose 128-bit
/// keys clashed with a structurally different signature — certificate
/// soundness demands this stays zero, and the cross-validation suite
/// asserts it.
struct BallStoreStats {
  std::uint64_t key_queries = 0;      ///< canonical_ball_key calls
  std::uint64_t memo_hits = 0;        ///< answered from the (g, v, r) memo
  std::uint64_t intern_lookups = 0;   ///< signature intern operations
  std::uint64_t intern_hits = 0;      ///< ... that were already interned
  std::uint64_t collisions = 0;       ///< 128-bit key clashes (must be 0)
  std::uint64_t intern_resets = 0;    ///< wholesale table resets (pressure)
  std::uint64_t oracle_checks = 0;    ///< key results re-checked vs oracle
  std::uint64_t oracle_disagreements = 0;  ///< ... that disagreed (must be 0)
  std::size_t interned_signatures = 0;     ///< live entries in the table
  std::size_t bytes = 0;                   ///< memo + intern footprint
};

[[nodiscard]] BallStoreStats ball_store_stats();

/// Records an oracle cross-check (isomorphism.cpp calls this when
/// LDLB_BALL_ORACLE=1 re-derives a key compare via propagation).
void note_ball_oracle_check(bool agreed);

/// Drops every memoized key and interned signature (cold-cache timings).
void clear_ball_store();

/// Sets the engine's byte budget (memo + interned table). The memo evicts
/// LRU; the interned table resets wholesale when it alone exceeds the
/// budget. Defaults to LDLB_BALL_CACHE_BYTES (8 MiB when unset), shared
/// with the legacy encoding memo's convention.
void set_ball_store_budget(std::size_t bytes);

/// Approximate bytes currently held (memo entries + interned signatures).
[[nodiscard]] std::size_t ball_store_bytes();

/// Serialises the interned signature table (text, line-oriented): each line
/// is `id L <loop colours> C <colour:child-id ...> K <32-digit hex key>` in
/// id order, so child references point backwards — a reader can rebuild the
/// table in one pass and re-derive every key to verify integrity.
[[nodiscard]] std::string serialize_ball_store();

/// Rebuilds the interned table from `serialize_ball_store` output
/// (replacing the current table; the key memo is cleared). Returns false —
/// leaving an empty table — on malformed input or when a re-derived key
/// disagrees with the recorded one.
bool deserialize_ball_store(std::string_view text);

}  // namespace ldlb
