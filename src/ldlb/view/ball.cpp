#include "ldlb/view/ball.hpp"

#include <algorithm>

namespace ldlb {

Ball extract_ball(const Multigraph& g, NodeId v, int radius) {
  LDLB_REQUIRE(v >= 0 && v < g.node_count());
  LDLB_REQUIRE(radius >= 0);
  std::vector<int> dist = g.distances_from(v);

  Ball ball;
  ball.radius = radius;
  // Upper bounds; the ball can only be smaller than the host.
  ball.graph.reserve_nodes(g.node_count());
  ball.graph.reserve_edges(g.edge_count());
  ball.to_host.reserve(static_cast<std::size_t>(g.node_count()));
  std::vector<NodeId> to_ball(static_cast<std::size_t>(g.node_count()),
                              kNoNode);
  // The centre first so its ball-local id is 0; then the other nodes in host
  // order for determinism.
  to_ball[static_cast<std::size_t>(v)] = ball.graph.add_node();
  ball.to_host.push_back(v);
  ball.center = 0;
  for (NodeId u = 0; u < g.node_count(); ++u) {
    if (u == v) continue;
    int d = dist[static_cast<std::size_t>(u)];
    if (d >= 0 && d <= radius) {
      to_ball[static_cast<std::size_t>(u)] = ball.graph.add_node();
      ball.to_host.push_back(u);
    }
  }
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const auto& ed = g.edge(e);
    int du = dist[static_cast<std::size_t>(ed.u)];
    int dv = dist[static_cast<std::size_t>(ed.v)];
    if (du < 0 || dv < 0) continue;
    // Edge distance = min endpoint distance + 1 (Section 3.1).
    if (std::min(du, dv) + 1 > radius) continue;
    ball.graph.add_edge(to_ball[static_cast<std::size_t>(ed.u)],
                        to_ball[static_cast<std::size_t>(ed.v)], ed.color);
  }
  return ball;
}

}  // namespace ldlb
