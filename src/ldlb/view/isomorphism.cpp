#include "ldlb/view/isomorphism.hpp"

#include <algorithm>
#include <cstdlib>
#include <deque>
#include <list>
#include <map>
#include <mutex>
#include <tuple>
#include <unordered_map>

#include "ldlb/util/alloc_guard.hpp"
#include "ldlb/view/ball_store.hpp"

namespace ldlb {

namespace {

// colour -> (other endpoint, edge id) at node v.
std::map<Color, std::pair<NodeId, EdgeId>> ends_at(const Multigraph& g,
                                                   NodeId v) {
  std::map<Color, std::pair<NodeId, EdgeId>> out;
  for (EdgeId e : g.incident_edges(v)) {
    out[g.edge(e).color] = {g.other_endpoint(e, v), e};
  }
  return out;
}

}  // namespace

std::optional<std::vector<NodeId>> rooted_isomorphism(const Multigraph& g,
                                                      NodeId root_g,
                                                      const Multigraph& h,
                                                      NodeId root_h) {
  if (!g.has_proper_edge_coloring() || !h.has_proper_edge_coloring()) {
    return std::nullopt;
  }
  if (!g.is_connected() || g.node_count() != h.node_count() ||
      g.edge_count() != h.edge_count()) {
    return std::nullopt;
  }
  std::vector<NodeId> phi(static_cast<std::size_t>(g.node_count()), kNoNode);
  std::vector<NodeId> used(static_cast<std::size_t>(h.node_count()), kNoNode);
  phi[static_cast<std::size_t>(root_g)] = root_h;
  used[static_cast<std::size_t>(root_h)] = root_g;
  std::deque<NodeId> queue{root_g};
  while (!queue.empty()) {
    NodeId u = queue.front();
    queue.pop_front();
    NodeId u2 = phi[static_cast<std::size_t>(u)];
    auto ends_g = ends_at(g, u);
    auto ends_h = ends_at(h, u2);
    if (ends_g.size() != ends_h.size()) return std::nullopt;
    for (const auto& [color, wg] : ends_g) {
      auto it = ends_h.find(color);
      if (it == ends_h.end()) return std::nullopt;
      NodeId w = wg.first;
      NodeId w2 = it->second.first;
      NodeId& img = phi[static_cast<std::size_t>(w)];
      if (img == kNoNode) {
        if (used[static_cast<std::size_t>(w2)] != kNoNode) return std::nullopt;
        img = w2;
        used[static_cast<std::size_t>(w2)] = w;
        queue.push_back(w);
      } else if (img != w2) {
        return std::nullopt;
      }
    }
  }
  // g connected => everything matched; node/edge counts equal and ends match
  // locally, so phi is an isomorphism.
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (phi[static_cast<std::size_t>(v)] == kNoNode) return std::nullopt;
  }
  return phi;
}

bool rooted_isomorphic(const Multigraph& g, NodeId root_g, const Multigraph& h,
                       NodeId root_h) {
  return rooted_isomorphism(g, root_g, h, root_h).has_value();
}

namespace {

std::map<std::tuple<int, Color>, NodeId> arc_ends_at(const Digraph& g,
                                                     NodeId v) {
  std::map<std::tuple<int, Color>, NodeId> out;
  for (EdgeId a : g.out_arcs(v)) out[{0, g.arc(a).color}] = g.arc(a).head;
  for (EdgeId a : g.in_arcs(v)) out[{1, g.arc(a).color}] = g.arc(a).tail;
  return out;
}

}  // namespace

std::optional<std::vector<NodeId>> rooted_isomorphism(const Digraph& g,
                                                      NodeId root_g,
                                                      const Digraph& h,
                                                      NodeId root_h) {
  if (!g.has_proper_po_coloring() || !h.has_proper_po_coloring()) {
    return std::nullopt;
  }
  if (!g.underlying_multigraph().is_connected() ||
      g.node_count() != h.node_count() || g.arc_count() != h.arc_count()) {
    return std::nullopt;
  }
  std::vector<NodeId> phi(static_cast<std::size_t>(g.node_count()), kNoNode);
  std::vector<NodeId> used(static_cast<std::size_t>(h.node_count()), kNoNode);
  phi[static_cast<std::size_t>(root_g)] = root_h;
  used[static_cast<std::size_t>(root_h)] = root_g;
  std::deque<NodeId> queue{root_g};
  while (!queue.empty()) {
    NodeId u = queue.front();
    queue.pop_front();
    NodeId u2 = phi[static_cast<std::size_t>(u)];
    auto ends_g = arc_ends_at(g, u);
    auto ends_h = arc_ends_at(h, u2);
    if (ends_g.size() != ends_h.size()) return std::nullopt;
    for (const auto& [key, w] : ends_g) {
      auto it = ends_h.find(key);
      if (it == ends_h.end()) return std::nullopt;
      NodeId w2 = it->second;
      NodeId& img = phi[static_cast<std::size_t>(w)];
      if (img == kNoNode) {
        if (used[static_cast<std::size_t>(w2)] != kNoNode) return std::nullopt;
        img = w2;
        used[static_cast<std::size_t>(w2)] = w;
        queue.push_back(w);
      } else if (img != w2) {
        return std::nullopt;
      }
    }
  }
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (phi[static_cast<std::size_t>(v)] == kNoNode) return std::nullopt;
  }
  return phi;
}

bool rooted_isomorphic(const Digraph& g, NodeId root_g, const Digraph& h,
                       NodeId root_h) {
  return rooted_isomorphism(g, root_g, h, root_h).has_value();
}

bool balls_isomorphic(const Ball& a, const Ball& b) {
  return a.radius == b.radius &&
         rooted_isomorphic(a.graph, a.center, b.graph, b.center);
}

std::string canonical_tree_encoding(const Multigraph& g, NodeId root) {
  LDLB_REQUIRE_MSG(g.is_forest_ignoring_loops(),
                   "canonical encoding needs a tree-with-loops");
  LDLB_REQUIRE(g.is_connected());

  // Iterative post-order so that deep adversary trees cannot overflow the
  // stack. state: 0 = enter, 1 = combine children.
  struct Frame {
    NodeId node;
    EdgeId via;
    int state;
  };
  std::vector<Frame> stack{{root, kNoEdge, 0}};
  // Completed subtree encodings; on combine, the top `child_count` entries
  // belong to the current frame.
  std::vector<std::string> done_stack;
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    if (f.state == 0) {
      stack.push_back({f.node, f.via, 1});
      for (EdgeId e : g.incident_edges(f.node)) {
        if (e == f.via || g.edge(e).is_loop()) continue;
        stack.push_back({g.other_endpoint(e, f.node), e, 0});
      }
    } else {
      // Children results are on done_stack (count = number of non-loop,
      // non-parent edges).
      std::vector<std::string> parts;
      for (EdgeId e : g.incident_edges(f.node)) {
        if (g.edge(e).is_loop()) {
          parts.push_back("l" + std::to_string(g.edge(e).color) + ";");
        }
      }
      int child_count = 0;
      for (EdgeId e : g.incident_edges(f.node)) {
        if (e != f.via && !g.edge(e).is_loop()) ++child_count;
      }
      // Pop that many child encodings; annotate with the colour of the edge
      // used. The children were pushed in incident order and processed LIFO,
      // but we sort all parts anyway, so order does not matter. Each child's
      // encoding already starts with its connecting colour.
      for (int i = 0; i < child_count; ++i) {
        parts.push_back(std::move(done_stack.back()));
        done_stack.pop_back();
      }
      std::sort(parts.begin(), parts.end());
      std::string enc;
      if (f.via != kNoEdge) {
        enc += "c" + std::to_string(g.edge(f.via).color);
      }
      enc += "(";
      for (const auto& p : parts) enc += p;
      enc += ")";
      done_stack.push_back(std::move(enc));
    }
  }
  LDLB_ENSURE(done_stack.size() == 1);
  return std::move(done_stack.back());
}

namespace {

struct BallKey {
  std::uint64_t fingerprint;
  NodeId node;
  int radius;

  friend bool operator==(const BallKey&, const BallKey&) = default;
};

struct BallKeyHash {
  std::size_t operator()(const BallKey& k) const noexcept {
    std::uint64_t h = k.fingerprint;
    h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.node)) *
         0x9e3779b97f4a7c15ULL;
    h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.radius)) *
         0xff51afd7ed558ccdULL;
    return static_cast<std::size_t>(h ^ (h >> 32));
  }
};

// Global memo for ball encodings. The certificate chain re-examines the same
// (graph, witness, radius) triples many times — the adversary verifies each
// level as it is built and the validator re-derives every ball again — so a
// small cache removes most extractions. Bounded by a byte budget with LRU
// eviction: large-Δ sweeps cache many long encodings, and evicting the cold
// tail degrades gracefully where wholesale clearing would thrash. Guarded
// by a mutex so parallel validation can share it.
//
// ldlb-lint: allow(raw-sync): the ball-memo lock only orders cache
// insert/evict/lookup; encodings are canonical and keyed by (graph
// fingerprint, node, radius), so hit-or-miss order cannot change any
// returned encoding — results are schedule-independent by construction.
std::mutex g_ball_cache_mutex;
// Front = most recently used.
std::list<BallKey> g_ball_lru;  // ldlb: guarded_by(g_ball_cache_mutex)

struct BallCacheEntry {
  std::optional<std::string> enc;
  std::list<BallKey>::iterator lru_it;
  std::size_t bytes = 0;
};

std::unordered_map<BallKey, BallCacheEntry, BallKeyHash>
    g_ball_cache;  // ldlb: guarded_by(g_ball_cache_mutex)
std::size_t g_ball_cache_bytes = 0;  // ldlb: guarded_by(g_ball_cache_mutex)
// ldlb: guarded_by(g_ball_cache_mutex)
std::size_t g_ball_cache_budget = [] {
  if (const char* s = std::getenv("LDLB_BALL_CACHE_BYTES");
      s != nullptr && *s != '\0') {
    const long long v = std::atoll(s);
    if (v >= 0) return static_cast<std::size_t>(v);
  }
  return std::size_t{8} << 20;
}();

// Rough per-entry footprint: key + hash/list/map node overheads + payload.
std::size_t entry_cost(const std::optional<std::string>& enc) {
  return 96 + (enc ? enc->size() : 0);
}

// Evicts LRU entries until the cache fits its budget. Caller holds the lock.
void evict_to_budget() {
  while (g_ball_cache_bytes > g_ball_cache_budget && !g_ball_lru.empty()) {  // ldlb-analyze: allow(locks): caller holds g_ball_cache_mutex
    auto it = g_ball_cache.find(g_ball_lru.back());  // ldlb-analyze: allow(locks): caller holds g_ball_cache_mutex
    g_ball_cache_bytes -= it->second.bytes;  // ldlb-analyze: allow(locks): caller holds g_ball_cache_mutex
    g_ball_cache.erase(it);  // ldlb-analyze: allow(locks): caller holds g_ball_cache_mutex
    g_ball_lru.pop_back();  // ldlb-analyze: allow(locks): caller holds g_ball_cache_mutex
  }
}

}  // namespace

std::optional<std::string> cached_ball_encoding(const Multigraph& g, NodeId v,
                                                int radius) {
  const BallKey key{g.fingerprint(), v, radius};
  {
    std::lock_guard<std::mutex> lk(g_ball_cache_mutex);
    auto it = g_ball_cache.find(key);
    if (it != g_ball_cache.end()) {
      g_ball_lru.splice(g_ball_lru.begin(), g_ball_lru, it->second.lru_it);
      return it->second.enc;
    }
  }
  // ldlb-lint: allow(ball-extraction): the AHU encoding is defined over the
  // materialised ball; this legacy route is off the hot path.
  Ball ball = extract_ball(g, v, radius);
  std::optional<std::string> enc;
  // The encoding route must agree exactly with rooted_isomorphism, which
  // demands proper colourings; balls are connected by construction.
  if (ball.graph.is_forest_ignoring_loops() &&
      ball.graph.has_proper_edge_coloring()) {
    enc = canonical_tree_encoding(ball.graph, ball.center);
  }
  {
    const std::size_t cost = entry_cost(enc);
    // Observes the thread-local allocation budget of util/alloc_guard —
    // memoization is the library's one open-ended consumer of memory, so
    // alloc-failure injection must be able to hit it.
    charge_alloc(cost);
    std::lock_guard<std::mutex> lk(g_ball_cache_mutex);
    auto [it, inserted] = g_ball_cache.try_emplace(key);
    if (inserted) {
      g_ball_lru.push_front(key);
      it->second = {enc, g_ball_lru.begin(), cost};
      g_ball_cache_bytes += cost;
      evict_to_budget();
    }
  }
  return enc;
}

namespace {

// When set, every canonical-key compare is re-derived through ball
// extraction + propagation and a disagreement aborts: the slow path is the
// ground truth the fast path must reproduce bit-for-bit.
bool ball_oracle_enabled() {
  static const bool enabled = [] {
    // ldlb-analyze: allow(determinism): latched once; enables the slow
    // cross-check path which aborts on disagreement, never changes results.
    const char* s = std::getenv("LDLB_BALL_ORACLE");
    return s != nullptr && *s != '\0' && *s != '0';
  }();
  return enabled;
}

}  // namespace

bool balls_isomorphic_cached(const Multigraph& g, NodeId gv,
                             const Multigraph& h, NodeId hv, int radius) {
  // Hot path: O(1) compare of canonical colour-refinement keys
  // (view/ball_store). Keys exist exactly when the host graphs are properly
  // coloured trees-with-loops — always the case for the Section 4
  // construction (P3).
  const std::optional<Checksum128> kg = canonical_ball_key(g, gv, radius);
  if (kg.has_value()) {
    const std::optional<Checksum128> kh = canonical_ball_key(h, hv, radius);
    if (kh.has_value()) {
      const bool iso = *kg == *kh;
      if (ball_oracle_enabled()) {
        // ldlb-lint: allow(ball-extraction): the oracle re-derives the
        // answer through the materialised slow path on purpose.
        Ball bg = extract_ball(g, gv, radius);
        // ldlb-lint: allow(ball-extraction): second half of the oracle pair.
        Ball bh = extract_ball(h, hv, radius);
        const bool truth = balls_isomorphic(bg, bh);
        note_ball_oracle_check(truth == iso);
        LDLB_ENSURE_MSG(truth == iso,
                        "canonical ball key compare ("
                            << (iso ? "iso" : "non-iso")
                            << ") disagrees with the propagation oracle at "
                            << "radius " << radius << ", nodes " << gv << "/"
                            << hv);
      }
      return iso;
    }
  }
  // At least one host graph is not a properly coloured tree-with-loops; fall
  // back to ball extraction + the generic propagation-based check.
  // ldlb-lint: allow(ball-extraction): canonical keys only decide tree
  // shapes; other shapes need the materialised propagation check.
  Ball bg = extract_ball(g, gv, radius);
  // ldlb-lint: allow(ball-extraction): second half of the fallback pair.
  Ball bh = extract_ball(h, hv, radius);
  return balls_isomorphic(bg, bh);
}

void clear_ball_encoding_cache() {
  {
    std::lock_guard<std::mutex> lk(g_ball_cache_mutex);
    g_ball_cache.clear();
    g_ball_lru.clear();
    g_ball_cache_bytes = 0;
  }
  // Cold-cache means cold everywhere: the canonical engine answers the hot
  // path now, so benchmarks and determinism tests that reset this cache
  // expect the key store to reset with it.
  clear_ball_store();
}

void set_ball_encoding_cache_budget(std::size_t bytes) {
  {
    std::lock_guard<std::mutex> lk(g_ball_cache_mutex);
    g_ball_cache_budget = bytes;
    evict_to_budget();
  }
  // One budget, both stores: LDLB_BALL_CACHE_BYTES governs all ball-derived
  // memoization.
  set_ball_store_budget(bytes);
}

std::size_t ball_encoding_cache_bytes() {
  std::size_t legacy = 0;
  {
    std::lock_guard<std::mutex> lk(g_ball_cache_mutex);
    legacy = g_ball_cache_bytes;
  }
  return legacy + ball_store_bytes();
}

}  // namespace ldlb
