// Radius-t neighbourhoods τ_t(G, v) (Section 3.1).
//
// τ_t(G, v) consists of the nodes within distance t of v together with the
// edges within distance t, where the distance of an edge {u, w} from v is
// min(dist(v,u), dist(v,w)) + 1. In particular τ_0(G, v) is the bare node v,
// and a loop attached to v lies at distance 1 — the convention that makes
// the base case of the lower bound work (Section 4.2).
#pragma once

#include <vector>

#include "ldlb/graph/multigraph.hpp"

namespace ldlb {

/// A radius-t ball: a multigraph plus the mapping back to the host graph.
struct Ball {
  Multigraph graph;
  NodeId center = kNoNode;             ///< ball-local id of the centre (always 0)
  int radius = 0;
  std::vector<NodeId> to_host;         ///< ball node -> host node
};

/// Extracts τ_t(g, v).
Ball extract_ball(const Multigraph& g, NodeId v, int radius);

}  // namespace ldlb
