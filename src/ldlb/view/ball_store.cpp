#include "ldlb/view/ball_store.hpp"

#include <algorithm>
#include <cstdlib>
#include <list>
#include <mutex>
#include <span>
#include <sstream>
#include <unordered_map>
#include <utility>
#include <vector>

#include "ldlb/util/alloc_guard.hpp"

namespace ldlb {

namespace {

// ---------------------------------------------------------------------------
// Interned signatures.
//
// A signature is one refinement step: the sorted loop colours of a node plus
// the sorted (edge colour, child signature) pairs of its neighbours one
// level down. Children are referenced by intern id (dense, assigned in
// interning order — a child is always interned before any parent that
// references it), while the *key* of a signature chains the children's
// 128-bit keys, so keys do not depend on table state and survive both
// wholesale table resets and process boundaries.
// ---------------------------------------------------------------------------

struct KeyHash {
  std::size_t operator()(const Checksum128& k) const noexcept {
    return static_cast<std::size_t>(k.mix());
  }
};

struct MemoKey {
  std::uint64_t fingerprint;
  NodeId node;
  int radius;

  friend bool operator==(const MemoKey&, const MemoKey&) = default;
};

struct MemoKeyHash {
  std::size_t operator()(const MemoKey& k) const noexcept {
    std::uint64_t h = k.fingerprint;
    h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.node)) *
         0x9e3779b97f4a7c15ULL;
    h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.radius)) *
         0xff51afd7ed558ccdULL;
    return static_cast<std::size_t>(h ^ (h >> 32));
  }
};

struct MemoEntry {
  Checksum128 key;
  std::list<MemoKey>::iterator lru_it;
};

// All engine state under one lock: the intern table, the (graph, node,
// radius) -> key front memo, the per-graph shape cache and the telemetry
// counters. Keys are content-derived, so whichever thread interns a
// signature first, every thread reads the same key — results are
// schedule-independent by construction.
//
// ldlb-lint: allow(raw-sync): the store lock only orders intern/memo
// bookkeeping; canonical keys are content-derived, so no returned value
// depends on scheduling.
std::mutex g_mutex;

// The intern table is stored SoA with payloads in two shared arenas: a miss
// appends to flat vectors instead of allocating per-signature, and a hit's
// structural compare reads one contiguous arena segment. The per-byte cost
// of the old node-per-Sig layout (two heap vectors plus an unordered_map
// node each) dominated the cold-encode profile at Δ=12.
std::vector<Checksum128> g_sig_keys;        // id -> content key
std::vector<std::uint32_t> g_loop_off{0};   // id -> arena begin; size ids + 1
std::vector<std::uint32_t> g_child_off{0};  // id -> arena begin; size ids + 1
std::vector<Color> g_loop_arena;         // sorted ascending per segment
std::vector<std::pair<Color, std::uint32_t>> g_child_arena;  // sorted by colour

[[nodiscard]] std::span<const Color> sig_loops(std::uint32_t id) {
  return {g_loop_arena.data() + g_loop_off[id],
          g_loop_arena.data() + g_loop_off[id + 1]};
}
[[nodiscard]] std::span<const std::pair<Color, std::uint32_t>> sig_children(
    std::uint32_t id) {
  return {g_child_arena.data() + g_child_off[id],
          g_child_arena.data() + g_child_off[id + 1]};
}

// Structure -> id lookup as an open-addressed, linear-probe table of intern
// ids: one predictable probe on the hot path instead of a bucket-node
// pointer chase. The probe hashes the *local* structure (loop colours plus
// (colour, child id) pairs packed one word each) with 64-bit FNV-1a —
// equality at a slot is decided by the full structural compare, so this
// hash only affects speed, and the ~3x-per-word costlier chained 128-bit
// content key is computed once per distinct signature, on insert. Rebuilt
// on growth and after wholesale resets; ids are never deleted individually.
constexpr std::uint32_t kEmptySlot = 0xffffffffu;
std::vector<std::uint32_t> g_slots;
std::size_t g_slot_mask = 0;

std::uint64_t probe_hash(
    std::span<const Color> loops,
    std::span<const std::pair<Color, std::uint32_t>> children) {
  std::uint64_t h = 14695981039346656037ULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  mix(static_cast<std::uint64_t>(loops.size()) << 32 | children.size());
  for (Color c : loops) mix(static_cast<std::uint32_t>(c));
  for (const auto& [c, id] : children) {
    mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(c)) << 32 | id);
  }
  h ^= h >> 32;  // feed high bits back down: the FNV prime only carries up
  h *= 1099511628211ULL;
  return h;
}

void rebuild_slots(std::size_t want) {
  std::size_t cap = 1024;
  while (cap * 3 < want * 4) cap <<= 1;  // keep load factor under 3/4
  g_slots.assign(cap, kEmptySlot);
  g_slot_mask = cap - 1;
  for (std::uint32_t id = 0; id < g_sig_keys.size(); ++id) {
    std::size_t idx = probe_hash(sig_loops(id), sig_children(id)) & g_slot_mask;
    while (g_slots[idx] != kEmptySlot) idx = (idx + 1) & g_slot_mask;
    g_slots[idx] = id;
  }
}

// Content keys seen so far, id-resolving: only consulted on insert, to keep
// the 128-bit collision telemetry the hot path no longer produces as a
// side effect (hits are decided structurally).
std::unordered_map<Checksum128, std::uint32_t, KeyHash> g_by_key128;

std::unordered_map<MemoKey, MemoEntry, MemoKeyHash> g_memo;
std::list<MemoKey> g_memo_lru;  // front = most recently used

// Shape gate per graph fingerprint: keys decide isomorphism only for
// properly coloured trees-with-loops, and the two predicates cost O(E) each.
std::unordered_map<std::uint64_t, bool> g_tree_ok;  // ldlb: guarded_by(g_mutex)

BallStoreStats g_stats;
std::size_t g_intern_bytes = 0;
std::size_t g_memo_bytes = 0;
std::size_t g_shape_bytes = 0;

// ldlb: guarded_by(g_mutex)
std::size_t g_budget = [] {
  if (const char* s = std::getenv("LDLB_BALL_CACHE_BYTES");
      s != nullptr && *s != '\0') {
    const long long v = std::atoll(s);
    if (v >= 0) return static_cast<std::size_t>(v);
  }
  return std::size_t{8} << 20;
}();

// Rough footprints. A signature costs its arena payload plus the fixed SoA
// row (key, two offsets, a slot) — far below the old node-per-Sig layout.
std::size_t sig_cost(std::size_t loops, std::size_t children) {
  return 32 + sizeof(Color) * loops +
         sizeof(std::pair<Color, std::uint32_t>) * children;
}
constexpr std::size_t kMemoEntryCost = 96;
constexpr std::size_t kTreeOkEntryCost = 48;

// Derives the content key of a signature from its children's *keys* (not
// their ids, which `table` resolves): the leading length words make the
// encoding prefix-free.
Checksum128 sig_key(
    const std::vector<Checksum128>& keys, std::span<const Color> loops,
    std::span<const std::pair<Color, std::uint32_t>> children) {
  Checksum128 state = kFnv128OffsetBasis;
  state = fnv1a_128_absorb(
      static_cast<std::uint64_t>(loops.size()) << 32 | children.size(), state);
  for (Color c : loops) {
    state = fnv1a_128_absorb(static_cast<std::uint32_t>(c), state);
  }
  for (const auto& [c, id] : children) {
    const Checksum128& child = keys[id];
    state = fnv1a_128_absorb(static_cast<std::uint32_t>(c), state);
    state = fnv1a_128_absorb(child.hi, state);
    state = fnv1a_128_absorb(child.lo, state);
  }
  return state;
}

// Interns (loops, children), returning the dense id. Caller holds g_mutex;
// children must already be interned (their ids index the table). Takes spans
// and copies only on a miss: the hot path runs at a ~90% hit rate, so
// by-value parameters would spend most of the engine's time copying and
// freeing vectors whose contents are already in the table — and spans let
// canonical_ball_key keep its per-node data in flat CSR arrays.
std::uint32_t intern(
    std::span<const Color> loops,
    std::span<const std::pair<Color, std::uint32_t>> children) {
  ++g_stats.intern_lookups;
  if ((g_sig_keys.size() + 1) * 4 > g_slots.size() * 3) {
    rebuild_slots(g_sig_keys.size() + 1);  // also covers first use
  }
  std::size_t idx = probe_hash(loops, children) & g_slot_mask;
  for (; g_slots[idx] != kEmptySlot; idx = (idx + 1) & g_slot_mask) {
    const std::uint32_t id = g_slots[idx];
    if (std::ranges::equal(sig_loops(id), loops) &&
        std::ranges::equal(sig_children(id), children)) {
      ++g_stats.intern_hits;
      return id;
    }
  }
  const Checksum128 key = sig_key(g_sig_keys, loops, children);
  const std::size_t cost = sig_cost(loops.size(), children.size());
  // Observes the thread-local allocation budget of util/alloc_guard — the
  // intern table is an open-ended consumer of memory, so alloc-failure
  // injection must be able to hit it.
  charge_alloc(cost);
  const auto id = static_cast<std::uint32_t>(g_sig_keys.size());
  if (!g_by_key128.emplace(key, id).second) {
    // A structurally different signature (this probe missed) chained to the
    // same 128-bit content key. Soundness of every key compare rests on
    // this never happening; the cross-validation suite asserts the counter
    // is zero.
    ++g_stats.collisions;
  }
  g_sig_keys.push_back(key);
  g_loop_arena.insert(g_loop_arena.end(), loops.begin(), loops.end());
  g_loop_off.push_back(static_cast<std::uint32_t>(g_loop_arena.size()));
  g_child_arena.insert(g_child_arena.end(), children.begin(), children.end());
  g_child_off.push_back(static_cast<std::uint32_t>(g_child_arena.size()));
  g_slots[idx] = id;
  g_intern_bytes += cost;
  return id;
}

// Caller holds g_mutex.
void clear_intern_table() {
  g_sig_keys.clear();
  g_loop_off.assign(1, 0);
  g_child_off.assign(1, 0);
  g_loop_arena.clear();
  g_child_arena.clear();
  g_slots.clear();
  g_slot_mask = 0;
  g_by_key128.clear();
  g_intern_bytes = 0;
}

// Caller holds g_mutex.
void clear_memo() {
  g_memo.clear();
  g_memo_lru.clear();
  g_memo_bytes = 0;
}

// Brings the engine back under budget. Memoized keys evict LRU first; if
// the intern table alone still exceeds the budget it resets wholesale — a
// valid (if cold) state, because memoized and returned keys are
// content-derived and never reference intern ids. Caller holds g_mutex;
// must not run while intern ids are live in a caller's layer arrays.
void enforce_budget() {
  while (g_intern_bytes + g_memo_bytes + g_shape_bytes > g_budget &&  // ldlb-analyze: allow(locks): caller holds g_mutex
         !g_memo_lru.empty()) {
    auto it = g_memo.find(g_memo_lru.back());
    g_memo_bytes -= kMemoEntryCost;
    g_memo.erase(it);
    g_memo_lru.pop_back();
  }
  if (g_intern_bytes + g_shape_bytes > g_budget && !g_sig_keys.empty()) {  // ldlb-analyze: allow(locks): caller holds g_mutex
    clear_intern_table();
    ++g_stats.intern_resets;
  }
  if (g_shape_bytes > g_budget) {  // ldlb-analyze: allow(locks): caller holds g_mutex
    g_tree_ok.clear();  // ldlb-analyze: allow(locks): caller holds g_mutex
    g_shape_bytes = 0;
  }
}

// Shape gate, cached per graph fingerprint. Takes g_mutex internally.
bool tree_with_loops_ok(const Multigraph& g, std::uint64_t fp) {
  {
    std::lock_guard<std::mutex> lk(g_mutex);
    auto it = g_tree_ok.find(fp);
    if (it != g_tree_ok.end()) return it->second;
  }
  const bool ok =
      g.is_forest_ignoring_loops() && g.has_proper_edge_coloring();
  std::lock_guard<std::mutex> lk(g_mutex);
  g_tree_ok.emplace(fp, ok);
  g_shape_bytes += kTreeOkEntryCost;
  return ok;
}

}  // namespace

std::optional<Checksum128> canonical_ball_key(const Multigraph& g, NodeId v,
                                              int radius) {
  LDLB_REQUIRE(v >= 0 && v < g.node_count());
  LDLB_REQUIRE(radius >= 0);
  const std::uint64_t fp = g.fingerprint();
  const MemoKey memo_key{fp, v, radius};
  {
    std::lock_guard<std::mutex> lk(g_mutex);
    ++g_stats.key_queries;
    auto it = g_memo.find(memo_key);
    if (it != g_memo.end()) {
      ++g_stats.memo_hits;
      g_memo_lru.splice(g_memo_lru.begin(), g_memo_lru, it->second.lru_it);
      return it->second.key;
    }
  }
  if (!tree_with_loops_ok(g, fp)) return std::nullopt;

  // Bounded BFS to depth `radius`; ball nodes in BFS order, centre first.
  // Matches view/ball.cpp's convention: a node belongs to the ball iff its
  // distance is at most the radius (an edge iff min end distance + 1 fits,
  // which the refinement below respects by construction).
  std::vector<std::int32_t> dist(static_cast<std::size_t>(g.node_count()), -1);
  std::vector<std::int32_t> pos(static_cast<std::size_t>(g.node_count()), -1);
  std::vector<NodeId> nodes;
  dist[static_cast<std::size_t>(v)] = 0;
  nodes.push_back(v);
  for (std::size_t head = 0; head < nodes.size(); ++head) {
    const NodeId cur = nodes[head];
    const auto d = dist[static_cast<std::size_t>(cur)];
    if (d >= radius) continue;
    for (EdgeId e : g.incident_edges(cur)) {
      const NodeId next = g.other_endpoint(e, cur);
      auto& dn = dist[static_cast<std::size_t>(next)];
      if (dn < 0) {
        dn = d + 1;
        nodes.push_back(next);
      }
    }
  }
  const std::size_t ball_size = nodes.size();
  for (std::size_t i = 0; i < ball_size; ++i) {
    pos[static_cast<std::size_t>(nodes[i])] = static_cast<std::int32_t>(i);
  }

  // Per ball node: sorted loop colours, and (colour, peer position) pairs
  // sorted by colour — colours at a node are distinct under a proper
  // colouring, so the order is canonical. Interior nodes only: nodes at
  // distance exactly `radius` are leaves of every layer they appear in.
  //
  // Flat CSR layout (count, prefix-sum, fill) rather than a vector per
  // node: the refinement below touches every segment once per layer, and
  // per-node vectors made allocator traffic the hottest symbol in the
  // Δ=12 profile.
  std::vector<std::int32_t> loop_off(ball_size + 1, 0);
  std::vector<std::int32_t> nbr_off(ball_size + 1, 0);
  for (std::size_t i = 0; i < ball_size; ++i) {
    const NodeId u = nodes[i];
    const auto du = dist[static_cast<std::size_t>(u)];
    for (EdgeId e : g.incident_edges(u)) {
      if (g.edge(e).is_loop()) {
        ++loop_off[i + 1];
      } else if (du < radius) {
        ++nbr_off[i + 1];
      }
    }
  }
  for (std::size_t i = 0; i < ball_size; ++i) {
    loop_off[i + 1] += loop_off[i];
    nbr_off[i + 1] += nbr_off[i];
  }
  std::vector<Color> loops(static_cast<std::size_t>(loop_off[ball_size]));
  std::vector<std::pair<Color, std::int32_t>> nbrs(
      static_cast<std::size_t>(nbr_off[ball_size]));
  {
    std::vector<std::int32_t> loop_cur(loop_off.begin(), loop_off.end() - 1);
    std::vector<std::int32_t> nbr_cur(nbr_off.begin(), nbr_off.end() - 1);
    for (std::size_t i = 0; i < ball_size; ++i) {
      const NodeId u = nodes[i];
      const auto du = dist[static_cast<std::size_t>(u)];
      for (EdgeId e : g.incident_edges(u)) {
        const auto& ed = g.edge(e);
        if (ed.is_loop()) {
          loops[static_cast<std::size_t>(loop_cur[i]++)] = ed.color;
        } else if (du < radius) {
          nbrs[static_cast<std::size_t>(nbr_cur[i]++)] = {
              ed.color,
              pos[static_cast<std::size_t>(g.other_endpoint(e, u))]};
        }
      }
    }
  }
  for (std::size_t i = 0; i < ball_size; ++i) {
    std::sort(loops.begin() + loop_off[i], loops.begin() + loop_off[i + 1]);
    std::sort(nbrs.begin() + nbr_off[i], nbrs.begin() + nbr_off[i + 1]);
  }

  // Layered refinement: k_0 is the shared leaf signature; layer d interns
  // k_d(u) for every node still within radius - d, reading the previous
  // layer's ids. Ball layers shrink geometrically in the adversary graphs,
  // so the total work is a small constant times the ball's edge count.
  Checksum128 result;
  {
    std::lock_guard<std::mutex> lk(g_mutex);
    const std::uint32_t leaf = intern({}, {});
    std::vector<std::uint32_t> prev(ball_size, leaf);
    std::vector<std::uint32_t> cur(ball_size, leaf);
    std::vector<std::pair<Color, std::uint32_t>> children;
    for (int d = 1; d <= radius; ++d) {
      for (std::size_t i = 0; i < ball_size; ++i) {
        if (dist[static_cast<std::size_t>(nodes[i])] > radius - d) continue;
        children.clear();
        children.reserve(static_cast<std::size_t>(nbr_off[i + 1]) -
                         static_cast<std::size_t>(nbr_off[i]));
        for (std::int32_t j = nbr_off[i]; j < nbr_off[i + 1]; ++j) {
          const auto& [c, peer] = nbrs[static_cast<std::size_t>(j)];
          children.emplace_back(c, prev[static_cast<std::size_t>(peer)]);
        }
        cur[i] = intern(
            std::span<const Color>{
                loops.data() + loop_off[i],
                static_cast<std::size_t>(loop_off[i + 1] - loop_off[i])},
            children);
      }
      std::swap(prev, cur);
    }
    result = g_sig_keys[prev[0]];
    charge_alloc(kMemoEntryCost);
    auto [it, inserted] = g_memo.try_emplace(memo_key);
    if (inserted) {
      g_memo_lru.push_front(memo_key);
      it->second = {result, g_memo_lru.begin()};
      g_memo_bytes += kMemoEntryCost;
    }
    // Safe here: the layer arrays are dead, no intern ids are live outside
    // the table.
    enforce_budget();
  }
  return result;
}

BallStoreStats ball_store_stats() {
  std::lock_guard<std::mutex> lk(g_mutex);
  BallStoreStats out = g_stats;
  out.interned_signatures = g_sig_keys.size();
  out.bytes = g_intern_bytes + g_memo_bytes + g_shape_bytes;
  return out;
}

void note_ball_oracle_check(bool agreed) {
  std::lock_guard<std::mutex> lk(g_mutex);
  ++g_stats.oracle_checks;
  if (!agreed) ++g_stats.oracle_disagreements;
}

void clear_ball_store() {
  std::lock_guard<std::mutex> lk(g_mutex);
  clear_intern_table();
  clear_memo();
  g_tree_ok.clear();
  g_shape_bytes = 0;
}

void set_ball_store_budget(std::size_t bytes) {
  std::lock_guard<std::mutex> lk(g_mutex);
  g_budget = bytes;
  enforce_budget();
}

std::size_t ball_store_bytes() {
  std::lock_guard<std::mutex> lk(g_mutex);
  return g_intern_bytes + g_memo_bytes + g_shape_bytes;
}

std::string serialize_ball_store() {
  std::lock_guard<std::mutex> lk(g_mutex);
  std::ostringstream os;
  os << "ldlb-ball-store v1 " << g_sig_keys.size() << "\n";
  for (std::uint32_t id = 0; id < g_sig_keys.size(); ++id) {
    os << id << " L";
    for (Color c : sig_loops(id)) os << ' ' << c;
    os << " C";
    for (const auto& [c, child] : sig_children(id)) {
      os << ' ' << c << ':' << child;
    }
    os << " K " << checksum_to_hex(g_sig_keys[id]) << "\n";
  }
  return os.str();
}

bool deserialize_ball_store(std::string_view text) {
  std::istringstream is{std::string(text)};
  std::string tag, version;
  std::size_t count = 0;
  if (!(is >> tag >> version >> count) || tag != "ldlb-ball-store" ||
      version != "v1") {
    clear_ball_store();
    return false;
  }
  // Parsed rows accumulate straight into a local copy of the SoA layout and
  // swap in wholesale on success; the unordered set only guards against
  // duplicate keys during the (cold) load.
  std::vector<Checksum128> keys;
  keys.reserve(count);
  std::vector<std::uint32_t> loop_off{0};
  std::vector<std::uint32_t> child_off{0};
  std::vector<Color> loop_arena;
  std::vector<std::pair<Color, std::uint32_t>> child_arena;
  std::unordered_map<Checksum128, std::uint32_t, KeyHash> by_key;
  std::size_t bytes = 0;
  for (std::size_t id = 0; id < count; ++id) {
    std::size_t got_id = 0;
    std::string marker;
    if (!(is >> got_id >> marker) || got_id != id || marker != "L") {
      clear_ball_store();
      return false;
    }
    std::vector<Color> loops;
    std::vector<std::pair<Color, std::uint32_t>> children;
    Checksum128 key;
    std::string token;
    bool in_children = false, have_key = false;
    while (is >> token) {
      if (token == "C") {
        if (in_children) break;
        in_children = true;
        continue;
      }
      if (token == "K") {
        std::string hex;
        if (!(is >> hex) || !checksum_from_hex(hex, key)) break;
        have_key = true;
        break;
      }
      std::size_t colon = token.find(':');
      try {
        if (!in_children) {
          if (colon != std::string::npos) break;
          loops.push_back(static_cast<Color>(std::stol(token)));
        } else {
          if (colon == std::string::npos) break;
          const auto c = static_cast<Color>(std::stol(token.substr(0, colon)));
          const auto child = static_cast<std::uint32_t>(
              std::stoul(token.substr(colon + 1)));
          // Children are always interned before their parents.
          if (child >= id) break;
          children.emplace_back(c, child);
        }
      } catch (const std::exception&) {
        break;
      }
    }
    if (!have_key || !in_children) {
      clear_ball_store();
      return false;
    }
    // Re-derive the content key from the already-loaded children and reject
    // any record whose recorded key disagrees — the table self-validates.
    if (sig_key(keys, loops, children) != key) {
      clear_ball_store();
      return false;
    }
    if (!by_key.emplace(key, static_cast<std::uint32_t>(id)).second) {
      clear_ball_store();
      return false;
    }
    bytes += sig_cost(loops.size(), children.size());
    keys.push_back(key);
    loop_arena.insert(loop_arena.end(), loops.begin(), loops.end());
    loop_off.push_back(static_cast<std::uint32_t>(loop_arena.size()));
    child_arena.insert(child_arena.end(), children.begin(), children.end());
    child_off.push_back(static_cast<std::uint32_t>(child_arena.size()));
  }
  std::lock_guard<std::mutex> lk(g_mutex);
  g_sig_keys = std::move(keys);
  g_loop_off = std::move(loop_off);
  g_child_off = std::move(child_off);
  g_loop_arena = std::move(loop_arena);
  g_child_arena = std::move(child_arena);
  g_by_key128 = std::move(by_key);
  rebuild_slots(g_sig_keys.size() + 1);
  g_intern_bytes = bytes;
  clear_memo();
  g_tree_ok.clear();
  return true;
}

}  // namespace ldlb
