// Exact rational numbers over BigInt.
//
// Fractional matching weights are rationals in [0, 1]. The lower-bound
// adversary (Section 4 of the paper) needs *exact* equality tests between
// weights produced in different graphs — floats would make the propagation
// principle (Fact 3) unsound — so all weights in the library are Rational.
#pragma once

#include <compare>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "ldlb/util/bigint.hpp"

namespace ldlb {

/// Exact rational number, always kept in lowest terms with a positive
/// denominator. Zero is 0/1.
class Rational {
 public:
  /// Zero.
  Rational() : num_(0), den_(1) {}
  /// Integer value.
  Rational(std::int64_t value) : num_(value), den_(1) {}  // NOLINT
  /// num/den; den must be non-zero.
  Rational(BigInt num, BigInt den);
  /// num/den from machine integers; den must be non-zero.
  Rational(std::int64_t num, std::int64_t den)
      : Rational(BigInt{num}, BigInt{den}) {}

  /// Parses "a/b" or "a"; throws on malformed input.
  static Rational from_string(const std::string& text);

  [[nodiscard]] const BigInt& num() const { return num_; }
  [[nodiscard]] const BigInt& den() const { return den_; }

  [[nodiscard]] bool is_zero() const { return num_.is_zero(); }
  [[nodiscard]] int sign() const { return num_.sign(); }

  Rational& operator+=(const Rational& rhs);
  Rational& operator-=(const Rational& rhs);
  Rational& operator*=(const Rational& rhs);
  /// Division; rhs must be non-zero.
  Rational& operator/=(const Rational& rhs);

  friend Rational operator+(Rational lhs, const Rational& rhs) {
    return lhs += rhs;
  }
  friend Rational operator-(Rational lhs, const Rational& rhs) {
    return lhs -= rhs;
  }
  friend Rational operator*(Rational lhs, const Rational& rhs) {
    return lhs *= rhs;
  }
  friend Rational operator/(Rational lhs, const Rational& rhs) {
    return lhs /= rhs;
  }
  Rational operator-() const { return Rational{num_.negated(), den_}; }

  friend bool operator==(const Rational& lhs, const Rational& rhs) {
    return lhs.num_ == rhs.num_ && lhs.den_ == rhs.den_;
  }
  friend std::strong_ordering operator<=>(const Rational& lhs,
                                          const Rational& rhs);

  /// min of two rationals (by value).
  static const Rational& min(const Rational& a, const Rational& b) {
    return b < a ? b : a;
  }
  /// max of two rationals (by value).
  static const Rational& max(const Rational& a, const Rational& b) {
    return a < b ? b : a;
  }

  /// "a/b", or just "a" when the denominator is 1.
  [[nodiscard]] std::string to_string() const;

  /// Approximate double value (for display / benchmarks only).
  [[nodiscard]] double to_double() const;

  /// Hash suitable for unordered containers.
  [[nodiscard]] std::size_t hash() const;

 private:
  void reduce();

  BigInt num_;
  BigInt den_;  // always > 0
};

std::ostream& operator<<(std::ostream& os, const Rational& value);

}  // namespace ldlb

template <>
struct std::hash<ldlb::Rational> {
  std::size_t operator()(const ldlb::Rational& v) const noexcept {
    return v.hash();
  }
};
