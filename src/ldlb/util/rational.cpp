#include "ldlb/util/rational.hpp"

#include <ostream>

#include "ldlb/util/error.hpp"

namespace ldlb {

Rational::Rational(BigInt num, BigInt den)
    : num_(std::move(num)), den_(std::move(den)) {
  LDLB_REQUIRE_MSG(!den_.is_zero(), "rational with zero denominator");
  reduce();
}

void Rational::reduce() {
  if (den_.is_negative()) {
    num_ = num_.negated();
    den_ = den_.negated();
  }
  if (num_.is_zero()) {
    den_ = BigInt{1};
    return;
  }
  // Weight arithmetic mostly produces already-reduced fractions (dyadic
  // denominators); skipping the two divisions when gcd == 1 keeps the hot
  // path at a single binary-GCD word loop.
  BigInt g = BigInt::gcd(num_, den_);
  if (g != BigInt{1}) {
    num_ /= g;
    den_ /= g;
  }
}

Rational Rational::from_string(const std::string& text) {
  auto slash = text.find('/');
  if (slash == std::string::npos) {
    return Rational{BigInt::from_string(text), BigInt{1}};
  }
  return Rational{BigInt::from_string(text.substr(0, slash)),
                  BigInt::from_string(text.substr(slash + 1))};
}

Rational& Rational::operator+=(const Rational& rhs) {
  num_ = num_ * rhs.den_ + rhs.num_ * den_;
  den_ = den_ * rhs.den_;
  reduce();
  return *this;
}

Rational& Rational::operator-=(const Rational& rhs) {
  num_ = num_ * rhs.den_ - rhs.num_ * den_;
  den_ = den_ * rhs.den_;
  reduce();
  return *this;
}

Rational& Rational::operator*=(const Rational& rhs) {
  num_ *= rhs.num_;
  den_ *= rhs.den_;
  reduce();
  return *this;
}

Rational& Rational::operator/=(const Rational& rhs) {
  LDLB_REQUIRE_MSG(!rhs.is_zero(), "division of rational by zero");
  num_ *= rhs.den_;
  den_ *= rhs.num_;
  reduce();
  return *this;
}

std::strong_ordering operator<=>(const Rational& lhs, const Rational& rhs) {
  // Sign alone decides most comparisons; equal denominators (common for the
  // dyadic weights the packing algorithms emit) avoid the cross products.
  const int sl = lhs.sign(), sr = rhs.sign();
  if (sl != sr) return sl <=> sr;
  if (lhs.den_ == rhs.den_) return lhs.num_ <=> rhs.num_;
  // Cross-multiplication is sign-safe because denominators are positive.
  return lhs.num_ * rhs.den_ <=> rhs.num_ * lhs.den_;
}

std::string Rational::to_string() const {
  if (den_ == BigInt{1}) return num_.to_string();
  return num_.to_string() + "/" + den_.to_string();
}

double Rational::to_double() const {
  // Sufficient for display: go through long double division of decimal
  // approximations when values fit, otherwise scale down.
  if (num_.fits_int64() && den_.fits_int64()) {
    return static_cast<double>(num_.to_int64()) /
           static_cast<double>(den_.to_int64());
  }
  // Fall back on string-length scaling for huge values (rare; display only).
  std::string n = num_.abs().to_string();
  std::string d = den_.to_string();
  double mant = 0;
  {
    double nn = 0, dd = 0;
    for (char c : n.substr(0, 15)) nn = nn * 10 + (c - '0');
    for (char c : d.substr(0, 15)) dd = dd * 10 + (c - '0');
    mant = nn / dd;
  }
  int exp10 = static_cast<int>(n.size()) - static_cast<int>(d.size());
  double value = mant;
  while (exp10 > 0) {
    value *= 10;
    --exp10;
  }
  while (exp10 < 0) {
    value /= 10;
    ++exp10;
  }
  return num_.is_negative() ? -value : value;
}

std::size_t Rational::hash() const {
  return num_.hash() * 1000003u ^ den_.hash();
}

std::ostream& operator<<(std::ostream& os, const Rational& value) {
  return os << value.to_string();
}

}  // namespace ldlb
