// Deterministic task pool for the parallel execution layer.
//
// The adversary, the simulator, and the certificate validator fan
// independent pieces of exact-arithmetic work out to a small fixed pool of
// worker threads. Two properties make this safe for a system whose output
// is a *byte-identical* certificate (the crash/resume contract of
// recover/):
//
//   * Deterministic join: `parallel_for` and `parallel_invoke` return only
//     after every task finished, results are written into caller-owned
//     index slots, and a task's exception is rethrown in task order — the
//     lowest-index failure wins, exactly as in a serial left-to-right loop.
//     Scheduling order can vary between runs; observable behaviour cannot.
//
//   * Inline nesting: a `parallel_*` call made from inside a worker thread
//     runs its tasks inline on that worker. Nested parallelism therefore
//     cannot deadlock the fixed-size pool, and the serial fallback keeps the
//     same code path as a 1-thread pool.
//
// Cooperative cancellation: both entry points take an optional
// CancellationToken (util/cancellation.hpp) and poll it between chunks /
// thunks — on every participating thread — so a cancel request lands
// within one chunk of work rather than one full batch. The resulting
// Cancelled error is rethrown under the same lowest-index rule.
//
// The pool size comes from the LDLB_THREADS environment variable (default:
// hardware concurrency), clamped to [1, 64]. `set_global_threads` rebuilds
// the global pool at runtime — tests use it to prove that 1-, 2- and
// 8-thread runs produce identical bytes. A pool of size 1 executes
// everything inline and spawns no threads at all. If the OS refuses to
// spawn workers (thread exhaustion), construction degrades to a serial
// pool instead of failing — see construction_error().
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "ldlb/util/cancellation.hpp"

namespace ldlb {

/// Fixed-size worker pool with a deterministic fork/join API.
class ThreadPool {
 public:
  /// Pool with `threads` workers (clamped to >= 1). A 1-thread pool spawns
  /// nothing and runs every task inline. If spawning workers fails with a
  /// system error the pool falls back to serial execution and records the
  /// failure in construction_error() instead of throwing.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of workers (>= 1); 1 means fully serial.
  [[nodiscard]] int size() const { return threads_; }

  /// Non-empty when construction could not spawn its workers and the pool
  /// degraded to serial execution (the diagnostic names the cause).
  [[nodiscard]] const std::string& construction_error() const {
    return construction_error_;
  }

  /// Runs `fn(i)` for i in [0, n) across the pool and waits for all of
  /// them. Exceptions are rethrown in index order (the lowest failing index
  /// wins), matching a serial loop. Reentrant calls from worker threads run
  /// inline. When `cancel` is given it is polled between chunks; a pending
  /// cancellation surfaces as Cancelled under the same lowest-index rule.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                    CancellationToken* cancel = nullptr);

  /// Runs the given thunks concurrently and waits for all of them; the
  /// first thunk's exception wins. Reentrant calls run inline. `cancel`, if
  /// given, is polled before each thunk starts.
  void parallel_invoke(std::vector<std::function<void()>> thunks,
                       CancellationToken* cancel = nullptr);

  /// The process-wide pool. First use sizes it from LDLB_THREADS (default:
  /// hardware concurrency, clamped to [1, 64]).
  static ThreadPool& global();

  /// Resizes the global pool (tests and tools; not thread-safe against
  /// concurrent global() users executing tasks). `threads` <= 0 restores
  /// the LDLB_THREADS / hardware default. A no-op in a forked child (see
  /// note_forked_child) — the inherited pool must not be torn down there.
  static void set_global_threads(int threads);

  /// Marks this process as a fork(2) child of a (possibly multithreaded)
  /// parent: the parent's pool workers do not exist here, so every
  /// parallel_* call runs inline from now on and global() hands out a
  /// private serial pool instead of the inherited (broken) one. Called by
  /// ipc::spawn_worker immediately after fork, before any other library
  /// call; irreversible for the life of the process.
  static void note_forked_child();

  /// True when the calling thread is one of this pool's workers.
  [[nodiscard]] bool on_worker_thread() const;

 private:
  struct Task {
    std::function<void()> run;
  };

  void worker_loop();
  /// Runs `tasks` across the pool (or inline), then rethrows the
  /// lowest-index exception, if any. Polls `cancel` before each task on
  /// every participating thread.
  void run_batch(std::vector<std::function<void()>>& tasks,
                 CancellationToken* cancel);

  int threads_;
  std::string construction_error_;
  std::vector<std::thread> workers_;
  // LIFO; tasks of one batch only.
  std::vector<Task> queue_;  // ldlb: guarded_by(mutex_)
  std::mutex mutex_;
  std::condition_variable wake_;
  bool stop_ = false;  // ldlb: guarded_by(mutex_)
};

/// Shorthand for ThreadPool::global().
ThreadPool& global_pool();

}  // namespace ldlb
