// Arbitrary-precision signed integers.
//
// Edge weights in fractional matchings are exact rationals (see
// rational.hpp); their numerators and denominators can grow with the number
// of communication rounds (e.g. repeated halving yields denominators 2^k for
// k up to Θ(Δ)), so fixed-width integers are not safe for the parameter
// ranges the benchmarks sweep. BigInt is a sign-magnitude integer with a
// two-tier representation tuned for this library's workload, where almost
// every value fits a machine word:
//
//   * small: the magnitude lives inline in a single uint64 — no heap
//     allocation, and add/sub/mul/div/gcd/compare run as one or two machine
//     operations (the adversary's propagation walker does millions of weight
//     comparisons, so this tier is the hot path);
//   * large: the magnitude spills into little-endian uint32 limbs with
//     schoolbook arithmetic (operands stay tens of limbs at most, so
//     asymptotically fancy algorithms would be wasted complexity).
//
// The representation is canonical — every value that fits 64 bits is stored
// small — so structural equality is value equality and comparisons
// short-circuit on the representation tier.
#pragma once

#include <compare>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace ldlb {

/// Arbitrary-precision signed integer (sign + magnitude; inline uint64
/// magnitude for small values, uint32 limbs for large ones).
///
/// Invariants: a magnitude that fits 64 bits is always stored inline
/// (`limbs_` empty); a spilled magnitude has at least three limbs and no
/// trailing zero limbs; zero is inline with `negative_ == false`.
class BigInt {
 public:
  /// Zero.
  BigInt() = default;

  /// Conversion from a machine integer. Inline: rational arithmetic mints
  /// millions of small temporaries (literals, signs, gcd seeds), so this
  /// must compile down to two register moves.
  BigInt(std::int64_t value)  // NOLINT(google-explicit-constructor)
      : negative_(value < 0) {
    // Avoid overflow on INT64_MIN by working in uint64.
    small_ = negative_ ? ~static_cast<std::uint64_t>(value) + 1
                       : static_cast<std::uint64_t>(value);
  }

  /// Parses a decimal string, optionally signed ("-123", "+7", "0").
  /// Throws ContractViolation on malformed input.
  static BigInt from_string(const std::string& text);

  /// True iff the value is zero.
  [[nodiscard]] bool is_zero() const { return small_ == 0 && limbs_.empty(); }
  /// True iff the value is strictly negative.
  [[nodiscard]] bool is_negative() const { return negative_; }
  /// Sign as -1, 0 or +1.
  [[nodiscard]] int sign() const {
    return is_zero() ? 0 : (negative_ ? -1 : 1);
  }

  /// Absolute value.
  [[nodiscard]] BigInt abs() const;
  /// Arithmetic negation.
  [[nodiscard]] BigInt negated() const;

  BigInt& operator+=(const BigInt& rhs);
  BigInt& operator-=(const BigInt& rhs);
  BigInt& operator*=(const BigInt& rhs);
  /// Truncated division (rounds toward zero), like C++ integer division.
  BigInt& operator/=(const BigInt& rhs);
  /// Remainder matching truncated division: (a/b)*b + a%b == a.
  BigInt& operator%=(const BigInt& rhs);

  friend BigInt operator+(BigInt lhs, const BigInt& rhs) { return lhs += rhs; }
  friend BigInt operator-(BigInt lhs, const BigInt& rhs) { return lhs -= rhs; }
  friend BigInt operator*(BigInt lhs, const BigInt& rhs) { return lhs *= rhs; }
  friend BigInt operator/(BigInt lhs, const BigInt& rhs) { return lhs /= rhs; }
  friend BigInt operator%(BigInt lhs, const BigInt& rhs) { return lhs %= rhs; }
  BigInt operator-() const { return negated(); }

  // Canonical representation makes structural equality value equality; the
  // inline word is compared first so mismatches short-circuit without
  // touching the limb vectors.
  friend bool operator==(const BigInt& lhs, const BigInt& rhs) {
    return lhs.small_ == rhs.small_ && lhs.negative_ == rhs.negative_ &&
           lhs.limbs_ == rhs.limbs_;
  }
  friend std::strong_ordering operator<=>(const BigInt& lhs,
                                          const BigInt& rhs);

  /// Greatest common divisor; result is non-negative. gcd(0,0) == 0.
  /// Small operands use binary GCD on machine words.
  static BigInt gcd(BigInt a, BigInt b);

  /// 2^k for k >= 0.
  static BigInt pow2(unsigned k);

  /// Decimal representation.
  [[nodiscard]] std::string to_string() const;

  /// Value as int64 if it fits; throws ContractViolation otherwise.
  [[nodiscard]] std::int64_t to_int64() const;
  /// True iff the value fits into int64.
  [[nodiscard]] bool fits_int64() const;

  /// Hash suitable for unordered containers.
  [[nodiscard]] std::size_t hash() const;

 private:
  /// True iff the magnitude is stored inline.
  [[nodiscard]] bool is_small() const { return limbs_.empty(); }

  /// Signed value from an inline magnitude (normalises -0).
  static BigInt from_magnitude(bool negative, std::uint64_t magnitude);

  /// The magnitude as a limb vector regardless of tier (copies when small).
  [[nodiscard]] std::vector<std::uint32_t> magnitude_limbs() const;

  /// Installs a limb magnitude, collapsing back to the inline tier when it
  /// fits; fixes the sign of zero.
  void set_magnitude(std::vector<std::uint32_t> limbs);

  // Magnitude helpers ignore signs.
  static std::vector<std::uint32_t> mag_add(const std::vector<std::uint32_t>& a,
                                            const std::vector<std::uint32_t>& b);
  // Requires |a| >= |b|.
  static std::vector<std::uint32_t> mag_sub(const std::vector<std::uint32_t>& a,
                                            const std::vector<std::uint32_t>& b);
  static std::vector<std::uint32_t> mag_mul(const std::vector<std::uint32_t>& a,
                                            const std::vector<std::uint32_t>& b);
  static int mag_cmp(const std::vector<std::uint32_t>& a,
                     const std::vector<std::uint32_t>& b);
  // Long division of magnitudes; returns {quotient, remainder}.
  static std::pair<std::vector<std::uint32_t>, std::vector<std::uint32_t>>
  mag_divmod(const std::vector<std::uint32_t>& a,
             const std::vector<std::uint32_t>& b);
  // Division by a word divisor (d != 0); returns {quotient, remainder}.
  static std::pair<std::vector<std::uint32_t>, std::uint64_t> mag_divmod_word(
      const std::vector<std::uint32_t>& a, std::uint64_t d);
  static void trim(std::vector<std::uint32_t>& limbs);

  std::uint64_t small_ = 0;           // inline magnitude when limbs_ is empty
  std::vector<std::uint32_t> limbs_;  // little-endian spilled magnitude
  bool negative_ = false;             // false when zero
};

std::ostream& operator<<(std::ostream& os, const BigInt& value);

}  // namespace ldlb

template <>
struct std::hash<ldlb::BigInt> {
  std::size_t operator()(const ldlb::BigInt& v) const noexcept {
    return v.hash();
  }
};
