// Arbitrary-precision signed integers.
//
// Edge weights in fractional matchings are exact rationals (see
// rational.hpp); their numerators and denominators can grow with the number
// of communication rounds (e.g. repeated halving yields denominators 2^k for
// k up to Θ(Δ)), so fixed-width integers are not safe for the parameter
// ranges the benchmarks sweep. BigInt is a compact sign-magnitude integer on
// 32-bit limbs with full arithmetic, comparison, gcd, and decimal I/O. It is
// deliberately simple (schoolbook multiplication / long division): operands
// in this library stay small (tens of limbs), so asymptotically fancy
// algorithms would be wasted complexity.
#pragma once

#include <compare>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace ldlb {

/// Arbitrary-precision signed integer (sign + magnitude on uint32 limbs).
///
/// Invariants: `limbs_` has no trailing zero limbs; zero is represented as an
/// empty limb vector with `negative_ == false`.
class BigInt {
 public:
  /// Zero.
  BigInt() = default;

  /// Conversion from a machine integer.
  BigInt(std::int64_t value);  // NOLINT(google-explicit-constructor)

  /// Parses a decimal string, optionally signed ("-123", "+7", "0").
  /// Throws ContractViolation on malformed input.
  static BigInt from_string(const std::string& text);

  /// True iff the value is zero.
  [[nodiscard]] bool is_zero() const { return limbs_.empty(); }
  /// True iff the value is strictly negative.
  [[nodiscard]] bool is_negative() const { return negative_; }
  /// Sign as -1, 0 or +1.
  [[nodiscard]] int sign() const {
    return is_zero() ? 0 : (negative_ ? -1 : 1);
  }

  /// Absolute value.
  [[nodiscard]] BigInt abs() const;
  /// Arithmetic negation.
  [[nodiscard]] BigInt negated() const;

  BigInt& operator+=(const BigInt& rhs);
  BigInt& operator-=(const BigInt& rhs);
  BigInt& operator*=(const BigInt& rhs);
  /// Truncated division (rounds toward zero), like C++ integer division.
  BigInt& operator/=(const BigInt& rhs);
  /// Remainder matching truncated division: (a/b)*b + a%b == a.
  BigInt& operator%=(const BigInt& rhs);

  friend BigInt operator+(BigInt lhs, const BigInt& rhs) { return lhs += rhs; }
  friend BigInt operator-(BigInt lhs, const BigInt& rhs) { return lhs -= rhs; }
  friend BigInt operator*(BigInt lhs, const BigInt& rhs) { return lhs *= rhs; }
  friend BigInt operator/(BigInt lhs, const BigInt& rhs) { return lhs /= rhs; }
  friend BigInt operator%(BigInt lhs, const BigInt& rhs) { return lhs %= rhs; }
  BigInt operator-() const { return negated(); }

  friend bool operator==(const BigInt& lhs, const BigInt& rhs) {
    return lhs.negative_ == rhs.negative_ && lhs.limbs_ == rhs.limbs_;
  }
  friend std::strong_ordering operator<=>(const BigInt& lhs,
                                          const BigInt& rhs);

  /// Greatest common divisor; result is non-negative. gcd(0,0) == 0.
  static BigInt gcd(BigInt a, BigInt b);

  /// 2^k for k >= 0.
  static BigInt pow2(unsigned k);

  /// Decimal representation.
  [[nodiscard]] std::string to_string() const;

  /// Value as int64 if it fits; throws ContractViolation otherwise.
  [[nodiscard]] std::int64_t to_int64() const;
  /// True iff the value fits into int64.
  [[nodiscard]] bool fits_int64() const;

  /// Hash suitable for unordered containers.
  [[nodiscard]] std::size_t hash() const;

 private:
  // Magnitude helpers ignore signs.
  static std::vector<std::uint32_t> mag_add(const std::vector<std::uint32_t>& a,
                                            const std::vector<std::uint32_t>& b);
  // Requires |a| >= |b|.
  static std::vector<std::uint32_t> mag_sub(const std::vector<std::uint32_t>& a,
                                            const std::vector<std::uint32_t>& b);
  static std::vector<std::uint32_t> mag_mul(const std::vector<std::uint32_t>& a,
                                            const std::vector<std::uint32_t>& b);
  static int mag_cmp(const std::vector<std::uint32_t>& a,
                     const std::vector<std::uint32_t>& b);
  // Long division of magnitudes; returns {quotient, remainder}.
  static std::pair<std::vector<std::uint32_t>, std::vector<std::uint32_t>>
  mag_divmod(const std::vector<std::uint32_t>& a,
             const std::vector<std::uint32_t>& b);
  static void trim(std::vector<std::uint32_t>& limbs);
  void normalize();

  std::vector<std::uint32_t> limbs_;  // little-endian, no trailing zeros
  bool negative_ = false;             // false when zero
};

std::ostream& operator<<(std::ostream& os, const BigInt& value);

}  // namespace ldlb

template <>
struct std::hash<ldlb::BigInt> {
  std::size_t operator()(const ldlb::BigInt& v) const noexcept {
    return v.hash();
  }
};
