#include "ldlb/util/checksum.hpp"

namespace ldlb {

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";
}

std::string checksum_to_hex(std::uint64_t hash) {
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kHexDigits[hash & 0xf];
    hash >>= 4;
  }
  return out;
}

bool checksum_from_hex(std::string_view text, std::uint64_t& hash) {
  if (text.size() != 16) return false;
  std::uint64_t value = 0;
  for (char ch : text) {
    int digit;
    if (ch >= '0' && ch <= '9') {
      digit = ch - '0';
    } else if (ch >= 'a' && ch <= 'f') {
      digit = ch - 'a' + 10;
    } else {
      return false;
    }
    value = (value << 4) | static_cast<std::uint64_t>(digit);
  }
  hash = value;
  return true;
}

std::string checksum_to_hex(const Checksum128& hash) {
  return checksum_to_hex(hash.hi) + checksum_to_hex(hash.lo);
}

bool checksum_from_hex(std::string_view text, Checksum128& hash) {
  if (text.size() != 32) return false;
  Checksum128 value;
  if (!checksum_from_hex(text.substr(0, 16), value.hi)) return false;
  if (!checksum_from_hex(text.substr(16), value.lo)) return false;
  hash = value;
  return true;
}

}  // namespace ldlb
