// Content checksums for the self-validating snapshot store.
//
// FNV-1a is not cryptographic — it guards against truncation, bit rot and
// editor accidents, not against a determined forger. Anything loaded from a
// snapshot is therefore *also* re-validated semantically (the resumable
// adversary re-runs the algorithm on every restored level), so a record
// with a forged checksum still cannot be trusted into a certificate chain.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace ldlb {

/// 64-bit FNV-1a over a byte string.
[[nodiscard]] constexpr std::uint64_t fnv1a_64(std::string_view bytes) {
  std::uint64_t hash = 14695981039346656037ull;
  for (char ch : bytes) {
    hash ^= static_cast<unsigned char>(ch);
    hash *= 1099511628211ull;
  }
  return hash;
}

/// Fixed-width (16 digit) lowercase hex rendering, the on-disk form.
[[nodiscard]] std::string checksum_to_hex(std::uint64_t hash);

/// Parses the 16-digit hex form; returns false on malformed input.
[[nodiscard]] bool checksum_from_hex(std::string_view text,
                                     std::uint64_t& hash);

}  // namespace ldlb
