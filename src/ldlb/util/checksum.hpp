// Content checksums for the self-validating snapshot store.
//
// FNV-1a is not cryptographic — it guards against truncation, bit rot and
// editor accidents, not against a determined forger. Anything loaded from a
// snapshot is therefore *also* re-validated semantically (the resumable
// adversary re-runs the algorithm on every restored level), so a record
// with a forged checksum still cannot be trusted into a certificate chain.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace ldlb {

/// 64-bit FNV-1a over a byte string.
[[nodiscard]] constexpr std::uint64_t fnv1a_64(std::string_view bytes) {
  std::uint64_t hash = 14695981039346656037ull;
  for (char ch : bytes) {
    hash ^= static_cast<unsigned char>(ch);
    hash *= 1099511628211ull;
  }
  return hash;
}

/// Fixed-width (16 digit) lowercase hex rendering, the on-disk form.
[[nodiscard]] std::string checksum_to_hex(std::uint64_t hash);

/// Parses the 16-digit hex form; returns false on malformed input.
[[nodiscard]] bool checksum_from_hex(std::string_view text,
                                     std::uint64_t& hash);

// ---------------------------------------------------------------------------
// 128-bit FNV-1a, for canonical ball keys (view/ball_store). At Δ=20 the
// interned table holds ~10^7 distinct sub-ball signatures; by the birthday
// bound a 64-bit key would collide with probability ≈ n²/2⁶⁵ ≈ 10⁻⁵ per
// sweep — too hot for a proof artefact — while 128 bits push the same bound
// below 10⁻²⁴. Canonical keys compare O(1) and must be content-derived
// (stable across processes and serialisable), which FNV-1a gives for free.
// ---------------------------------------------------------------------------

/// A 128-bit checksum as two machine words. Value-comparable and hashable;
/// the pair (hi, lo) is the big-endian reading of the 128-bit hash.
struct Checksum128 {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend constexpr bool operator==(const Checksum128&,
                                   const Checksum128&) = default;
  /// Word-mix for unordered containers (not part of the on-disk form).
  [[nodiscard]] constexpr std::uint64_t mix() const {
    std::uint64_t h = hi ^ (lo * 0x9e3779b97f4a7c15ULL);
    h ^= h >> 29;
    h *= 0xbf58476d1ce4e5b9ULL;
    return h ^ (h >> 32);
  }
};

namespace detail {

/// 64×64→128 schoolbook multiply (portable: no __int128 in public headers).
struct U128Product {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;
};

[[nodiscard]] constexpr U128Product mul_64x64(std::uint64_t a,
                                              std::uint64_t b) {
  const std::uint64_t a_lo = a & 0xffffffffULL, a_hi = a >> 32;
  const std::uint64_t b_lo = b & 0xffffffffULL, b_hi = b >> 32;
  const std::uint64_t ll = a_lo * b_lo;
  const std::uint64_t lh = a_lo * b_hi;
  const std::uint64_t hl = a_hi * b_lo;
  const std::uint64_t hh = a_hi * b_hi;
  const std::uint64_t mid = (ll >> 32) + (lh & 0xffffffffULL) +
                            (hl & 0xffffffffULL);
  U128Product out;
  out.lo = (mid << 32) | (ll & 0xffffffffULL);
  out.hi = hh + (lh >> 32) + (hl >> 32) + (mid >> 32);
  return out;
}

/// One FNV-1a-128 step: hash = (hash ^ byte) * prime mod 2^128, with the
/// standard 128-bit prime 2^88 + 2^8 + 0x3b.
[[nodiscard]] constexpr Checksum128 fnv1a_128_step(Checksum128 hash,
                                                   unsigned char byte) {
  hash.lo ^= byte;
  // hash * (2^88 + 0x13b) mod 2^128:
  //   2^88 term: only lo contributes below 2^128, landing in hi << 24;
  //   0x13b term: full 128x64 schoolbook.
  const std::uint64_t shifted_hi = hash.lo << 24;
  const U128Product lo_p = mul_64x64(hash.lo, 0x13bULL);
  const std::uint64_t small_hi = hash.hi * 0x13bULL + lo_p.hi;
  return Checksum128{shifted_hi + small_hi, lo_p.lo};
}

}  // namespace detail

/// The FNV-1a-128 offset basis (144066263297769815596495629667062367629).
inline constexpr Checksum128 kFnv128OffsetBasis{0x6c62272e07bb0142ULL,
                                                0x62b821756295c58dULL};

/// 128-bit FNV-1a over a byte string, optionally chained from a previous
/// state so composite keys hash without materialising the full byte string.
[[nodiscard]] constexpr Checksum128 fnv1a_128(
    std::string_view bytes, Checksum128 state = kFnv128OffsetBasis) {
  for (char ch : bytes) {
    state = detail::fnv1a_128_step(state, static_cast<unsigned char>(ch));
  }
  return state;
}

/// Chains one little-endian 64-bit word into a running FNV-1a-128 state.
[[nodiscard]] constexpr Checksum128 fnv1a_128_word(std::uint64_t word,
                                                   Checksum128 state) {
  for (int i = 0; i < 8; ++i) {
    state = detail::fnv1a_128_step(
        state, static_cast<unsigned char>((word >> (8 * i)) & 0xffU));
  }
  return state;
}

/// Absorbs one 64-bit word into a running state with a *single* prime
/// multiplication — the hot-path variant for view/ball_store's signature
/// hashing, where fnv1a_128_word's eight byte steps per word dominated the
/// Δ=12 adversary profile. Not byte-compatible with fnv1a_128_word (the
/// whole word lands in the xor at once); injectivity per step is the same
/// (xor, then multiply by the odd prime, are both bijections mod 2^128),
/// the avalanche is just slower. Acceptable for canonical keys because
/// every intern hit structurally compares signatures and counts
/// collisions — a key collision is detected, not silently believed.
[[nodiscard]] constexpr Checksum128 fnv1a_128_absorb(std::uint64_t word,
                                                     Checksum128 state) {
  state.lo ^= word;
  const std::uint64_t shifted_hi = state.lo << 24;
  const detail::U128Product lo_p = detail::mul_64x64(state.lo, 0x13bULL);
  return Checksum128{shifted_hi + state.hi * 0x13bULL + lo_p.hi, lo_p.lo};
}

/// Fixed-width (32 digit) lowercase hex rendering of a 128-bit checksum.
[[nodiscard]] std::string checksum_to_hex(const Checksum128& hash);

/// Parses the 32-digit hex form; returns false on malformed input.
[[nodiscard]] bool checksum_from_hex(std::string_view text, Checksum128& hash);

}  // namespace ldlb
