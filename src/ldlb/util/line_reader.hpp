// Line-tracking tokenizer for the text parsers (graph_io, certificate_io).
//
// The formats are line-oriented; reading through LineReader lets a parser
// attribute every defect to a 1-based line number and the offending token,
// which ParseError then carries to the caller. Tokens are whitespace
// separated and never span lines.
#pragma once

#include <cstdlib>
#include <istream>
#include <sstream>
#include <string>

#include "ldlb/util/error.hpp"

namespace ldlb {

class LineReader {
 public:
  explicit LineReader(std::istream& is) : is_(is) {}

  /// Next token; `what` names the expected item for the error message when
  /// the input ends instead.
  std::string token(const char* what) {
    if (!pushed_back_.empty()) {
      std::string tok = std::move(pushed_back_);
      pushed_back_.clear();
      return tok;
    }
    std::string tok;
    while (!(line_stream_ >> tok)) {
      if (!next_line()) {
        fail(std::string("unexpected end of input — expected ") + what);
      }
    }
    return tok;
  }

  /// Next token parsed as an integer in [lo, hi].
  long long integer(const char* what, long long lo, long long hi) {
    std::string tok = token(what);
    char* end = nullptr;
    const long long value = std::strtoll(tok.c_str(), &end, 10);
    if (end == tok.c_str() || *end != '\0') {
      fail(std::string("expected integer ") + what, tok);
    }
    if (value < lo || value > hi) {
      std::ostringstream os;
      os << what << " " << value << " out of range [" << lo << ", " << hi
         << "]";
      fail(os.str(), tok);
    }
    return value;
  }

  /// Consumes the next token and requires it to equal `expected`.
  void expect(const std::string& expected, const char* what) {
    std::string tok = token(what);
    if (tok != expected) {
      fail("expected '" + expected + "' (" + what + ")", tok);
    }
  }

  /// Returns a token to the reader; the next token() call yields it again.
  /// At most one token can be pushed back at a time (parsers use this for
  /// one-token lookahead, e.g. 'level' vs 'end').
  void push_back(std::string tok) {
    LDLB_REQUIRE_MSG(pushed_back_.empty(),
                     "LineReader holds at most one pushed-back token");
    pushed_back_ = std::move(tok);
  }

  /// True when only whitespace remains. A probed token is pushed back and
  /// returned by the next token() call.
  bool at_end() {
    std::string probe;
    for (;;) {
      if (line_stream_ >> probe) {
        pushed_back_ = probe;
        return false;
      }
      if (!next_line()) return true;
    }
  }

  /// Line of the most recently read token (1-based; 0 before any read).
  [[nodiscard]] int line() const { return line_; }

  /// Throws ParseError anchored at the current line.
  [[noreturn]] void fail(const std::string& msg,
                         const std::string& tok = "") const {
    std::ostringstream os;
    os << "line " << line_ << ": " << msg;
    if (!tok.empty()) os << ", got '" << tok << "'";
    throw ParseError(os.str(), line_, tok);
  }

 private:
  bool next_line() {
    std::string buf;
    if (!std::getline(is_, buf)) return false;
    ++line_;
    line_stream_.clear();
    line_stream_.str(buf);
    return true;
  }

  std::istream& is_;
  std::istringstream line_stream_;
  std::string pushed_back_;
  int line_ = 0;
};

}  // namespace ldlb
