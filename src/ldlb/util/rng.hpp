// Deterministic pseudo-random number generation.
//
// All randomness in the library (random graph generation, randomised
// distributed algorithms, property-test sweeps) flows through Rng so that
// every test and benchmark is reproducible from a seed. The core generator
// is splitmix64 feeding xoshiro256**.
#pragma once

#include <cstdint>
#include <vector>

#include "ldlb/util/error.hpp"

namespace ldlb {

/// Deterministic PRNG (xoshiro256** seeded via splitmix64).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& s : state_) {
      // splitmix64 step
      x += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      s = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit word.
  std::uint64_t next_u64() {
    auto rotl = [](std::uint64_t v, int k) {
      return (v << k) | (v >> (64 - k));
    };
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound); bound must be positive.
  std::uint64_t next_below(std::uint64_t bound) {
    LDLB_REQUIRE(bound > 0);
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % bound);
    std::uint64_t v = next_u64();
    while (v >= limit) v = next_u64();
    return v % bound;
  }

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) {
    LDLB_REQUIRE(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Fair coin.
  bool next_bool() { return (next_u64() & 1) != 0; }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::size_t j = next_below(i);
      std::swap(items[i - 1], items[j]);
    }
  }

  /// A fresh independent stream (for per-node randomness in Appendix B).
  Rng split() { return Rng{next_u64() ^ 0xd1b54a32d192ed03ull}; }

 private:
  std::uint64_t state_[4];
};

}  // namespace ldlb
