// Dependency-free inter-process plumbing for the adversary fleet.
//
// The fleet (fault/fleet.hpp) distributes speculative unfoldings and
// per-level validation across forked worker processes. Everything those
// processes need to talk — and to die without taking the run down — lives
// here, and *only* here: the raw-process lint rule confines fork(2),
// pipe(2), kill(2), waitpid(2) and signal handling to this module so every
// process-control site in the tree is audited.
//
//   * Framing: length-prefixed messages over a pipe, each carrying a magic
//     tag and an FNV-1a checksum of its payload. A frame damaged in any way
//     — bad magic, oversized length, checksum mismatch, torn tail from a
//     killed writer — reads as kCorrupt/kEof, never as silent garbage.
//   * Deadlines: reads are poll(2)-driven against a monotonic Deadline
//     (util/cancellation.hpp), so a hung peer surfaces as kTimeout instead
//     of blocking the coordinator forever.
//   * Process lifecycle: spawn_worker forks a child that runs a callback
//     and _exit()s; poll_exit/wait_exit reap via waitpid and classify the
//     exit (clean code vs terminating signal); kill_process delivers
//     signals. The child switches the thread pool into post-fork serial
//     mode first (ThreadPool::note_forked_child) because the parent's pool
//     threads do not exist in the child.
//
// Frames deliberately carry *text* payloads (the repo's line-oriented
// formats) — the protocol stays diff-able and independent of host byte
// order; only the fixed 20-byte header is binary (little-endian).
#pragma once

#include <sys/types.h>

#include <functional>
#include <string>
#include <string_view>

#include "ldlb/util/cancellation.hpp"

namespace ldlb::ipc {

/// How reading one frame ended.
enum class FrameStatus {
  kOk,       ///< a complete, checksummed frame was read
  kEof,      ///< the peer closed the pipe (or died) before/mid frame
  kTimeout,  ///< the deadline passed with the frame still incomplete
  kCorrupt,  ///< bad magic, implausible length, or checksum mismatch
};

[[nodiscard]] const char* to_string(FrameStatus status);

/// One read attempt: status plus the payload (kOk only) and a diagnostic
/// detail naming the defect (kCorrupt/kEof/kTimeout).
struct FrameResult {
  FrameStatus status = FrameStatus::kEof;
  std::string payload;
  std::string detail;
};

/// Hard cap on a single frame (certificate levels are kilobytes; anything
/// near this is a corrupt length field, not data).
inline constexpr std::uint64_t kMaxFramePayload = 1ull << 30;

/// Serialises one frame (20-byte header + payload) into a byte string —
/// exactly what write_frame puts on the wire. The socket layer (util/net)
/// uses this so its fault-injection seam can corrupt, truncate or delay the
/// raw bytes before they hit the descriptor.
[[nodiscard]] std::string encode_frame(std::string_view payload);

/// Writes one frame (header + payload) to `fd`, retrying short writes and
/// EINTR. Throws IoError (with errno; EPIPE when the reader is gone) on
/// failure — callers treat that as a lost peer, not a torn stream.
void write_frame(int fd, std::string_view payload);

/// Reads one complete frame from `fd`, polling until `deadline` (a default
/// Deadline never expires, i.e. blocks indefinitely). Never throws on peer
/// damage — EOF, timeouts and corruption come back as classified statuses;
/// only a genuinely broken local call (e.g. EBADF) throws IoError.
[[nodiscard]] FrameResult read_frame(int fd, const Deadline& deadline = {});

/// A connected worker process as the coordinator sees it.
struct WorkerProcess {
  pid_t pid = -1;
  int to_fd = -1;    ///< coordinator -> worker requests
  int from_fd = -1;  ///< worker -> coordinator responses

  [[nodiscard]] bool valid() const { return pid > 0; }
};

/// Body run inside the forked child: read requests from `in_fd`, write
/// responses to `out_fd`, return the process exit code.
using WorkerMain = std::function<int(int in_fd, int out_fd)>;

/// Forks a worker connected by a pipe pair. The child enters post-fork
/// serial thread-pool mode, closes the coordinator's ends, runs `main`, and
/// _exit()s with its return value (an escaping exception exits with code
/// 125 after printing the reason). The parent closes the child's ends and
/// returns the handle. Throws IoError when pipe(2)/fork(2) refuse — the
/// fleet degrades to the in-process engine on that, mirroring
/// ThreadPool::construction_error().
[[nodiscard]] WorkerProcess spawn_worker(const WorkerMain& main);

/// Forks a plain child (no pipes) that enters post-fork serial thread-pool
/// mode, runs `main`, and _exit()s with its return value (escaping
/// exceptions exit 125, as in spawn_worker). Used by the socket-fleet
/// daemon to serve each accepted connection in its own process, and by
/// tests that need a background daemon. Throws IoError when fork(2)
/// refuses; the set_spawn_failures_for_test seam applies here too.
[[nodiscard]] pid_t spawn_child(const std::function<int()>& main);

/// Closes both coordinator-side descriptors (idempotent).
void close_worker_fds(WorkerProcess& worker);

/// Classified child exit.
enum class ExitKind {
  kRunning,   ///< still alive (poll_exit) / deadline passed (wait_exit)
  kExited,    ///< _exit()/return; `code` holds the exit status
  kSignaled,  ///< killed by a signal; `sig` holds it (e.g. SIGKILL)
};

[[nodiscard]] const char* to_string(ExitKind kind);

struct ExitStatus {
  ExitKind kind = ExitKind::kRunning;
  int code = 0;
  int sig = 0;

  /// "exited(3)", "signaled(SIGKILL)", "running".
  [[nodiscard]] std::string to_string() const;
};

/// Non-blocking reap: waitpid(WNOHANG). kRunning when the child is alive.
/// A reaped status is final — the pid is gone afterwards.
[[nodiscard]] ExitStatus poll_exit(pid_t pid);

/// Reaps with a deadline, polling waitpid; kRunning on timeout (the child
/// is then still un-reaped and may be killed and reaped again).
[[nodiscard]] ExitStatus wait_exit(pid_t pid, const Deadline& deadline);

/// Sends `sig` (default SIGKILL) to the process; no-op on dead pids.
void kill_process(pid_t pid, int sig = 9);

/// Ignores SIGPIPE process-wide (idempotent) so a write to a dead worker's
/// pipe fails with EPIPE instead of killing the coordinator. Called by
/// spawn_worker on both sides.
void ignore_sigpipe();

/// Sleeps for `seconds` (>= 0) on the monotonic clock via poll(2) — the
/// fleet's backoff timer. Lives here so process-control call sites stay
/// confined to this module. When `cancel` is given, the wait is sliced into
/// short polls and the token is checked between them, so a cancel landing
/// mid-backoff throws Cancelled within ~10ms instead of sleeping out the
/// whole geometric wait.
void sleep_seconds(double seconds, CancellationToken* cancel = nullptr);

/// Test seam: the next `n` spawn_worker calls throw IoError as if fork(2)
/// had refused, exercising the fleet's degradation path. Not thread-safe;
/// tests only.
void set_spawn_failures_for_test(int n);

}  // namespace ldlb::ipc
