#include "ldlb/util/alloc_guard.hpp"

namespace ldlb {
namespace detail {

thread_local long long tls_alloc_budget = -1;

}  // namespace detail
}  // namespace ldlb
