// Cooperative cancellation for long-running adversary and validation work.
//
// A CancellationToken is a thread-safe cancel flag plus an optional
// monotonic-clock Deadline and a structured reason. Any thread may call
// request_cancel(); the execution layers (ThreadPool::parallel_for /
// parallel_invoke between chunks, the simulator's round loop and delivery
// loop, the adversary between phases, the resumable adversary between
// levels) poll the token via check(), which throws the typed Cancelled
// error. The guarded layer (fault/guarded_run.hpp) classifies that throw as
// RunStatus::kCancelled with whatever partial RunDiagnostics the run had
// accumulated — a cancelled run is a *classified outcome*, not a torn one.
//
// Deadlines use std::chrono::steady_clock so that a clock step (NTP, manual
// adjustment) can neither fire a deadline early nor postpone it. A token
// whose deadline has passed reports cancelled() and check() records the
// deadline as the structured reason.
#pragma once

#include <atomic>
#include <chrono>
#include <mutex>
#include <optional>
#include <string>

#include "ldlb/util/error.hpp"

namespace ldlb {

/// A point on the monotonic clock after which work should stop. A
/// default-constructed Deadline is unset and never expires.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  Deadline() = default;

  /// Deadline `seconds` from now (must be >= 0).
  [[nodiscard]] static Deadline in(double seconds);

  /// Deadline at an absolute monotonic time point.
  [[nodiscard]] static Deadline at(Clock::time_point when);

  [[nodiscard]] bool is_set() const { return when_.has_value(); }
  [[nodiscard]] bool expired() const {
    // ldlb-analyze: allow(determinism): expiry aborts a run via
    // CancelledError; it never feeds a certificate byte.
    return when_.has_value() && Clock::now() >= *when_;
  }

  /// Seconds until expiry; negative once expired, +infinity when unset.
  [[nodiscard]] double remaining_seconds() const;

 private:
  std::optional<Clock::time_point> when_;
};

/// Thread-safe cooperative cancellation: any thread can request_cancel(),
/// workers poll via cancelled() / check(). A token may carry a Deadline;
/// once it passes, the token behaves exactly as if request_cancel() had been
/// called with a deadline-describing reason.
class CancellationToken {
 public:
  CancellationToken() = default;
  explicit CancellationToken(Deadline deadline) : deadline_(deadline) {}

  /// Requests cancellation with a structured reason. Idempotent: the first
  /// caller's reason wins, later calls are no-ops.
  void request_cancel(const std::string& reason = "cancelled");

  /// True once cancellation was requested or the deadline passed. Safe to
  /// call concurrently from any thread; a bare flag read plus (when a
  /// deadline is set) one monotonic clock read.
  [[nodiscard]] bool cancelled() const;

  /// The structured reason ("" before any cancellation).
  [[nodiscard]] std::string reason() const;

  /// The deadline this token carries (unset by default).
  [[nodiscard]] const Deadline& deadline() const { return deadline_; }

  /// Throws Cancelled when cancelled() — the single polling point every
  /// execution layer calls.
  void check();

 private:
  Deadline deadline_;
  mutable std::atomic<bool> cancelled_{false};
  mutable std::mutex mutex_;
  // Set once, before cancelled_ goes true.
  mutable std::string reason_;  // ldlb: guarded_by(mutex_)
};

}  // namespace ldlb
