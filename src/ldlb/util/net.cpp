#include "ldlb/util/net.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>

#include "ldlb/util/error.hpp"

namespace ldlb::net {

namespace {

NetFaultInjector* g_injector = nullptr;

[[noreturn]] void throw_io(const char* op, const std::string& where, int err) {
  std::ostringstream os;
  os << "net " << op << " on " << where << " failed: " << std::strerror(err);
  throw IoError(os.str(), where, err);
}

// Remaining budget of `deadline` as a poll(2) timeout in ms: -1 blocks
// indefinitely for the unset deadline, 0 polls, positive waits (capped so a
// clock-sized double cannot overflow the int).
int poll_timeout_ms(const Deadline& deadline) {
  if (!deadline.is_set()) return -1;
  const double remaining = deadline.remaining_seconds();
  if (remaining <= 0) return 0;
  const double ms = remaining * 1000.0;
  return ms >= 1e9 ? 1000000000 : static_cast<int>(ms) + 1;
}

// Tighter of two deadlines as a poll timeout (-1 = both unset).
int poll_timeout_ms(const Deadline& a, const Deadline& b) {
  const int ta = poll_timeout_ms(a);
  const int tb = poll_timeout_ms(b);
  if (ta < 0) return tb;
  if (tb < 0) return ta;
  return ta < tb ? ta : tb;
}

std::string endpoint_name(const std::string& host, int port) {
  return host + ":" + std::to_string(port);
}

// Numeric IPv4 only (plus the literal "localhost"): the fleet's endpoints
// are explicit pairs, so no resolver is pulled in.
sockaddr_in make_addr(const std::string& host, int port) {
  LDLB_REQUIRE_MSG(port >= 0 && port <= 65535, "port out of range: " << port);
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof addr);
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  const std::string numeric = host == "localhost" ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, numeric.c_str(), &addr.sin_addr) != 1) {
    throw IoError(
        "net address '" + host + "' is not numeric IPv4 (or 'localhost')",
        host, EINVAL);
  }
  return addr;
}

// Small frames (requests, heartbeats) must not sit in Nagle's buffer while
// the peer's reply deadline burns down.
void set_nodelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

void write_all(int fd, const char* data, std::size_t n) {
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t w = ::write(fd, data + sent, n - sent);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw_io("write", "<socket>", errno);
    }
    sent += static_cast<std::size_t>(w);
  }
}

}  // namespace

void NetFaultInjector::on_connect(const std::string& /*host*/, int /*port*/) {}

NetFaultInjector::SendAction NetFaultInjector::on_send(std::string& /*frame*/) {
  return {};
}

NetFaultInjector* net_fault_injector() { return g_injector; }

void set_net_fault_injector(NetFaultInjector* injector) {
  g_injector = injector;
}

FrameChannel::FrameChannel(FrameChannel&& other) noexcept : fd_(other.fd_) {
  other.fd_ = -1;
}

FrameChannel& FrameChannel::operator=(FrameChannel&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

FrameChannel::~FrameChannel() { close(); }

void FrameChannel::send(std::string_view payload) {
  LDLB_REQUIRE_MSG(valid(), "send on a closed channel");
  std::string frame = ipc::encode_frame(payload);
  NetFaultInjector::SendAction action;
  if (g_injector != nullptr) action = g_injector->on_send(frame);
  if (action.delay_seconds > 0) ipc::sleep_seconds(action.delay_seconds);
  if (action.drop) return;
  if (action.truncate_at >= 0 &&
      static_cast<std::size_t>(action.truncate_at) < frame.size()) {
    write_all(fd_, frame.data(), static_cast<std::size_t>(action.truncate_at));
    hard_close();
    throw IoError("net send cut mid-frame (injected disconnect)", "<socket>",
                  EPIPE);
  }
  write_all(fd_, frame.data(), frame.size());
}

RecvResult FrameChannel::recv(const Deadline& deadline, double stale_after) {
  LDLB_REQUIRE_MSG(valid(), "recv on a closed channel");
  Deadline stale =
      stale_after > 0 ? Deadline::in(stale_after) : Deadline();
  for (;;) {
    struct pollfd pfd;
    pfd.fd = fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int ready = ::poll(&pfd, 1, poll_timeout_ms(deadline, stale));
    if (ready < 0) {
      if (errno == EINTR) continue;
      throw_io("poll", "<socket>", errno);
    }
    if (ready == 0) {
      RecvResult result;
      result.frame.status = ipc::FrameStatus::kTimeout;
      if (stale.is_set() && stale.expired()) {
        result.stale = true;
        result.frame.detail =
            "no frame or heartbeat within the staleness window";
        return result;
      }
      if (deadline.is_set() && deadline.expired()) {
        result.frame.detail = "deadline expired waiting for a frame";
        return result;
      }
      continue;  // rounding: neither deadline has quite expired yet
    }
    RecvResult result;
    result.frame = ipc::read_frame(fd_, deadline);
    if (result.frame.status == ipc::FrameStatus::kOk &&
        result.frame.payload == kHeartbeatPayload) {
      // The peer is alive, merely idle: restart the staleness window and
      // keep waiting for a data frame.
      if (stale_after > 0) stale = Deadline::in(stale_after);
      continue;
    }
    return result;
  }
}

void FrameChannel::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void FrameChannel::hard_close() {
  if (fd_ < 0) return;
  struct linger lg;
  lg.l_onoff = 1;
  lg.l_linger = 0;
  ::setsockopt(fd_, SOL_SOCKET, SO_LINGER, &lg, sizeof lg);
  close();
}

Listener::Listener(Listener&& other) noexcept
    : fd_(other.fd_), port_(other.port_) {
  other.fd_ = -1;
  other.port_ = 0;
}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
    other.port_ = 0;
  }
  return *this;
}

Listener::~Listener() { close(); }

Listener Listener::on(const std::string& host, int port) {
  const std::string where = endpoint_name(host, port);
  sockaddr_in addr = make_addr(host, port);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_io("socket", where, errno);
  // Re-binding a just-closed port must not fail for TIME_WAIT: restarted
  // daemons reuse their address.
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    const int err = errno;
    ::close(fd);
    throw_io("bind", where, err);
  }
  if (::listen(fd, 64) != 0) {
    const int err = errno;
    ::close(fd);
    throw_io("listen", where, err);
  }
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    const int err = errno;
    ::close(fd);
    throw_io("getsockname", where, err);
  }
  Listener listener;
  listener.fd_ = fd;
  listener.port_ = static_cast<int>(ntohs(addr.sin_port));
  return listener;
}

std::optional<FrameChannel> Listener::accept_channel(const Deadline& deadline) {
  LDLB_REQUIRE_MSG(valid(), "accept on a closed listener");
  for (;;) {
    struct pollfd pfd;
    pfd.fd = fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int ready = ::poll(&pfd, 1, poll_timeout_ms(deadline));
    if (ready < 0) {
      if (errno == EINTR) continue;
      throw_io("poll", "<listener>", errno);
    }
    if (ready == 0) {
      if (deadline.is_set() && deadline.expired()) return std::nullopt;
      continue;
    }
    const int cfd = ::accept(fd_, nullptr, nullptr);
    if (cfd < 0) {
      // The peer may have given up between poll and accept (ECONNABORTED)
      // — not our problem; keep listening.
      if (errno == EINTR || errno == EAGAIN || errno == ECONNABORTED) continue;
      throw_io("accept", "<listener>", errno);
    }
    set_nodelay(cfd);
    return FrameChannel(cfd);
  }
}

void Listener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

FrameChannel connect_channel(const std::string& host, int port,
                             const Deadline& deadline) {
  if (g_injector != nullptr) g_injector->on_connect(host, port);
  ipc::ignore_sigpipe();
  const std::string where = endpoint_name(host, port);
  sockaddr_in addr = make_addr(host, port);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_io("socket", where, errno);

  // Non-blocking connect so the handshake deadline, not the kernel's
  // SYN-retry schedule, bounds how long an unreachable endpoint stalls us.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  const int rc =
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr);
  if (rc != 0 && errno != EINPROGRESS && errno != EINTR) {
    const int err = errno;
    ::close(fd);
    throw_io("connect", where, err);
  }
  if (rc != 0) {
    for (;;) {
      struct pollfd pfd;
      pfd.fd = fd;
      pfd.events = POLLOUT;
      pfd.revents = 0;
      const int ready = ::poll(&pfd, 1, poll_timeout_ms(deadline));
      if (ready < 0) {
        if (errno == EINTR) continue;
        const int err = errno;
        ::close(fd);
        throw_io("poll", where, err);
      }
      if (ready == 0) {
        if (deadline.is_set() && deadline.expired()) {
          ::close(fd);
          throw_io("connect", where, ETIMEDOUT);
        }
        continue;
      }
      break;
    }
    int err = 0;
    socklen_t elen = sizeof err;
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &elen);
    if (err != 0) {
      ::close(fd);
      throw_io("connect", where, err);
    }
  }
  ::fcntl(fd, F_SETFL, flags);
  set_nodelay(fd);
  return FrameChannel(fd);
}

namespace {

std::string handshake_banner(const char* verb, std::uint64_t fingerprint) {
  std::ostringstream os;
  os << "ldlb-net " << verb << ' ' << kNetProtocolVersion << ' '
     << fingerprint;
  return os.str();
}

std::string expectation(std::uint64_t fingerprint) {
  std::ostringstream os;
  os << "version " << kNetProtocolVersion << " fingerprint " << fingerprint;
  return os.str();
}

struct Greeting {
  bool parsed = false;
  std::string verb;
  std::uint64_t version = 0;
  std::uint64_t fingerprint = 0;
};

// "ldlb-net <verb> <version> <fingerprint>".
Greeting parse_greeting(const std::string& payload) {
  Greeting greeting;
  std::istringstream is(payload);
  std::string tag;
  if (!(is >> tag >> greeting.verb >> greeting.version >>
        greeting.fingerprint)) {
    return greeting;
  }
  greeting.parsed = tag == "ldlb-net";
  return greeting;
}

[[noreturn]] void throw_mismatch(const char* side, const std::string& expected,
                                 const std::string& got) {
  throw HandshakeMismatch(std::string("net handshake mismatch (") + side +
                              "): expected " + expected + ", peer sent '" +
                              got + "'",
                          expected, got);
}

[[noreturn]] void throw_handshake_io(const char* side,
                                     const ipc::FrameResult& frame) {
  std::ostringstream os;
  os << "net handshake (" << side
     << ") read failed: " << ipc::to_string(frame.status);
  if (!frame.detail.empty()) os << " (" << frame.detail << ")";
  throw IoError(os.str(), "<socket>", 0);
}

}  // namespace

void client_handshake(FrameChannel& channel, std::uint64_t fingerprint,
                      const Deadline& deadline) {
  channel.send(handshake_banner("hello", fingerprint));
  const RecvResult reply = channel.recv(deadline);
  if (reply.frame.status != ipc::FrameStatus::kOk) {
    throw_handshake_io("client", reply.frame);
  }
  const Greeting greeting = parse_greeting(reply.frame.payload);
  if (!greeting.parsed || greeting.verb != "welcome" ||
      greeting.version != kNetProtocolVersion ||
      greeting.fingerprint != fingerprint) {
    throw_mismatch("client", expectation(fingerprint), reply.frame.payload);
  }
}

void server_handshake(FrameChannel& channel, std::uint64_t fingerprint,
                      const Deadline& deadline) {
  const RecvResult hello = channel.recv(deadline);
  if (hello.frame.status != ipc::FrameStatus::kOk) {
    throw_handshake_io("server", hello.frame);
  }
  const Greeting greeting = parse_greeting(hello.frame.payload);
  if (!greeting.parsed || greeting.verb != "hello" ||
      greeting.version != kNetProtocolVersion ||
      greeting.fingerprint != fingerprint) {
    // Best-effort courtesy reject so the client mismatches with detail
    // instead of a dead stream; the throw below is the real signal.
    try {
      channel.send(handshake_banner("reject", fingerprint));
    } catch (const IoError&) {
    }
    throw_mismatch("server", expectation(fingerprint), hello.frame.payload);
  }
  channel.send(handshake_banner("welcome", fingerprint));
}

}  // namespace ldlb::net
