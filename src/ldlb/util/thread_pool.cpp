#include "ldlb/util/thread_pool.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <memory>
#include <system_error>

namespace ldlb {

namespace {

// Set while a thread is inside ThreadPool::worker_loop; lets reentrant
// parallel_* calls detect that they are already on a worker and run inline.
thread_local const ThreadPool* tls_worker_pool = nullptr;

constexpr int kMaxThreads = 64;

int default_threads() {
  // ldlb-analyze: allow(determinism): selects the worker count only; the
  // merge order of parallel results is fixed, so certificate bytes do not
  // depend on parallelism (fleet determinism suite pins this).
  if (const char* s = std::getenv("LDLB_THREADS"); s != nullptr && *s != '\0') {
    int v = std::atoi(s);
    if (v >= 1) return std::min(v, kMaxThreads);
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(std::min(hw, unsigned{kMaxThreads}));
}

std::mutex g_pool_mutex;
std::unique_ptr<ThreadPool> g_pool;  // ldlb: guarded_by(g_pool_mutex)

// Set (single-threaded, before any further library call) in the child of a
// fork(2): the parent's worker threads do not exist there and any mutex a
// parent thread held at fork time is locked forever, so the child must
// neither wait on the inherited pool nor touch g_pool/g_pool_mutex again.
bool g_forked_child = false;

}  // namespace

ThreadPool::ThreadPool(int threads) : threads_(std::max(threads, 1)) {
  workers_.reserve(static_cast<std::size_t>(threads_ - 1));
  // The calling thread participates in every batch, so n workers serve a
  // pool of size n+1; a 1-thread pool spawns nothing. A system refusing to
  // spawn (thread/PID exhaustion) degrades the pool to serial execution —
  // the library keeps working, just without speed-up.
  try {
    for (int i = 1; i < threads_; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  } catch (const std::system_error& e) {
    construction_error_ = std::string("thread pool degraded to serial: "
                                      "spawning worker failed: ") +
                          e.what();
    {
      std::lock_guard<std::mutex> lk(mutex_);
      stop_ = true;
    }
    wake_.notify_all();
    for (auto& w : workers_) w.join();
    workers_.clear();
    // ldlb-analyze: allow(locks): every worker is joined; no other thread
    // can observe this pool while its constructor is still running.
    stop_ = false;
    threads_ = 1;
    std::fprintf(stderr, "ldlb: %s\n", construction_error_.c_str());
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (auto& w : workers_) w.join();
}

bool ThreadPool::on_worker_thread() const { return tls_worker_pool == this; }

void ThreadPool::worker_loop() {
  tls_worker_pool = this;
  std::unique_lock<std::mutex> lk(mutex_);
  for (;;) {
    wake_.wait(lk, [this] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stop_) return;
      continue;
    }
    Task task = std::move(queue_.back());
    queue_.pop_back();
    lk.unlock();
    task.run();
    lk.lock();
  }
}

void ThreadPool::run_batch(std::vector<std::function<void()>>& tasks,
                           CancellationToken* cancel) {
  const std::size_t n = tasks.size();
  if (n == 0) return;
  std::vector<std::exception_ptr> errors(n);

  // Wraps task i with the pre-task cancellation poll; a pending cancel
  // surfaces as the task's error, so the lowest-index rule applies to
  // cancellation exactly as to any other failure.
  auto run_one = [&tasks, &errors, cancel](std::size_t i) {
    try {
      if (cancel != nullptr) cancel->check();
      tasks[i]();
    } catch (...) {
      errors[i] = std::current_exception();
    }
  };

  if (threads_ <= 1 || g_forked_child || on_worker_thread() || n == 1) {
    // Inline: run every task (as the parallel path would), then report the
    // lowest-index failure.
    for (std::size_t i = 0; i < n; ++i) run_one(i);
  } else {
    struct Join {
      std::mutex m;
      std::condition_variable cv;
      std::size_t done = 0;  // ldlb: guarded_by(join.m)
    } join;
    {
      std::lock_guard<std::mutex> lk(mutex_);
      for (std::size_t i = 0; i < n; ++i) {
        queue_.push_back(Task{[&run_one, &join, i] {
          run_one(i);
          // Notify under the lock: the waiter destroys `join` as soon as it
          // observes done == n, so signalling after unlock would race with
          // the condition variable's destruction.
          std::lock_guard<std::mutex> g(join.m);
          ++join.done;
          join.cv.notify_one();
        }});
      }
    }
    wake_.notify_all();
    // The issuing thread drains the queue alongside the workers.
    for (;;) {
      std::unique_lock<std::mutex> lk(mutex_);
      if (queue_.empty()) break;
      Task task = std::move(queue_.back());
      queue_.pop_back();
      lk.unlock();
      task.run();
    }
    std::unique_lock<std::mutex> lk(join.m);
    join.cv.wait(lk, [&join, n] { return join.done == n; });
  }

  for (std::size_t i = 0; i < n; ++i) {
    if (errors[i]) std::rethrow_exception(errors[i]);
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn,
                              CancellationToken* cancel) {
  if (n == 0) return;
  if (threads_ <= 1 || g_forked_child || on_worker_thread() || n == 1) {
    // Poll with the same chunk granularity the parallel path would use, so
    // cancellation latency does not depend on the thread count.
    constexpr std::size_t kSerialPollStride = 32;
    for (std::size_t i = 0; i < n; ++i) {
      if (cancel != nullptr && i % kSerialPollStride == 0) cancel->check();
      fn(i);
    }
    return;
  }
  // Contiguous chunks: the lowest failing chunk's first failure is exactly
  // the lowest failing index, preserving serial exception order.
  const std::size_t chunks =
      std::min(n, static_cast<std::size_t>(threads_) * 4);
  const std::size_t per = (n + chunks - 1) / chunks;
  std::vector<std::function<void()>> tasks;
  tasks.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = c * per;
    const std::size_t hi = std::min(n, lo + per);
    if (lo >= hi) break;
    tasks.push_back([lo, hi, &fn] {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    });
  }
  run_batch(tasks, cancel);
}

void ThreadPool::parallel_invoke(std::vector<std::function<void()>> thunks,
                                 CancellationToken* cancel) {
  run_batch(thunks, cancel);
}

ThreadPool& ThreadPool::global() {
  if (g_forked_child) {
    // g_pool_mutex may be locked forever by a parent thread that no longer
    // exists; hand out a private serial pool that never touches it. Leaked
    // deliberately: the child leaves via _exit and never joins anything.
    static ThreadPool* child_pool = new ThreadPool(1);
    return *child_pool;
  }
  std::lock_guard<std::mutex> lk(g_pool_mutex);
  if (!g_pool) g_pool = std::make_unique<ThreadPool>(default_threads());
  return *g_pool;
}

void ThreadPool::set_global_threads(int threads) {
  if (g_forked_child) return;  // the inherited pool must stay untouched
  std::lock_guard<std::mutex> lk(g_pool_mutex);
  g_pool = std::make_unique<ThreadPool>(
      threads <= 0 ? default_threads() : std::min(threads, kMaxThreads));
}

void ThreadPool::note_forked_child() { g_forked_child = true; }

ThreadPool& global_pool() { return ThreadPool::global(); }

}  // namespace ldlb
