// Error taxonomy and contract checking for the ldlb library.
//
// Every failure the library can report derives from `ldlb::Error`, so a
// caller that wants "anything ldlb noticed went wrong" catches one type,
// while the test suite and the guarded-execution layer (fault/guarded_run)
// can distinguish *how* a run went wrong:
//
//   Error
//   ├── ContractViolation   broken precondition / internal invariant
//   ├── ParseError          malformed textual input (line + offending token)
//   ├── IoError             a filesystem operation failed (path + errno;
//   │                       real or injected by fault/env_fault)
//   ├── ModelViolation      an algorithm broke the LOCAL-model output
//   │                       contract (missing or disagreeing announcements)
//   ├── BudgetExceeded      a guarded run overran its round / message /
//   │                       wall-clock budget
//   ├── FaultInjected       a fault plan fired in trap mode (pinpoints the
//   │                       first injected fault site)
//   ├── Cancelled           a CancellationToken (util/cancellation.hpp) was
//   │                       polled after cancellation / deadline expiry
//   ├── HandshakeMismatch   a network peer answered the util/net handshake
//   │                       with the wrong protocol version or a different
//   │                       run fingerprint — a stale or foreign peer
//   └── WorkerLost          a fleet worker process died, hung past its
//                           deadline, or sent a corrupt frame — and the
//                           respawn budget ran out (fault/fleet.hpp)
//
// These exceptions guard *logic* errors and adversarial misbehaviour; they
// are not used for ordinary control flow.
#pragma once

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>

namespace ldlb {

/// Common base of every error the library throws.
class Error : public std::logic_error {
 public:
  explicit Error(const std::string& what) : std::logic_error(what) {}
};

/// Thrown when a documented precondition or internal invariant is violated.
class ContractViolation : public Error {
 public:
  explicit ContractViolation(const std::string& what) : Error(what) {}
};

/// Thrown by the text parsers (graph_io, certificate_io) on malformed
/// input. Carries the 1-based line number and the offending token so that
/// tooling can point at the exact defect.
class ParseError : public Error {
 public:
  ParseError(const std::string& what, int line, std::string token = "")
      : Error(what), line_(line), token_(std::move(token)) {}

  /// 1-based line of the defect; -1 when unknown (e.g. unexpected EOF
  /// before any line was read).
  [[nodiscard]] int line() const { return line_; }
  /// The token that failed to parse ("" when the problem is a missing
  /// token).
  [[nodiscard]] const std::string& token() const { return token_; }

 private:
  int line_;
  std::string token_;
};

/// Thrown by the file helpers (util/atomic_file, the snapshot store) when a
/// filesystem operation fails — for real, or injected through the
/// fault/env_fault seam. Carries the path involved and the errno value, so
/// the supervision layer can classify transient (ENOSPC, EAGAIN, EINTR)
/// against permanent (EIO, ...) environment failures; the what() text
/// includes the failing operation and the errno description.
class IoError : public Error {
 public:
  IoError(const std::string& what, std::string path, int error_code = 0)
      : Error(what), path_(std::move(path)), error_code_(error_code) {}

  [[nodiscard]] const std::string& path() const { return path_; }
  /// The errno value of the failing operation (0 when unknown).
  [[nodiscard]] int error_code() const { return error_code_; }

 private:
  std::string path_;
  int error_code_;
};

/// Thrown by CancellationToken::check() once cancellation was requested (or
/// the token's deadline passed). Carries the structured reason given to
/// request_cancel(); the guarded layer classifies this as
/// RunStatus::kCancelled instead of letting a cancelled run look torn.
class Cancelled : public Error {
 public:
  explicit Cancelled(const std::string& what, std::string reason = "")
      : Error(what), reason_(std::move(reason)) {}

  /// The reason passed to CancellationToken::request_cancel ("" if none).
  [[nodiscard]] const std::string& reason() const { return reason_; }

 private:
  std::string reason_;
};

/// Thrown by the util/net handshake when a peer speaks the wrong protocol
/// version or carries a different run fingerprint — connecting a Δ=5
/// coordinator to a Δ=4 worker daemon, or a stale binary to a new one,
/// must fail loudly before any work is sharded, never corrupt a run.
/// Carries both sides of the comparison for diagnostics.
class HandshakeMismatch : public Error {
 public:
  HandshakeMismatch(const std::string& what, std::string expected,
                    std::string got)
      : Error(what), expected_(std::move(expected)), got_(std::move(got)) {}

  /// What this side required, e.g. "version 1 fingerprint 0xabc".
  [[nodiscard]] const std::string& expected() const { return expected_; }
  /// What the peer announced.
  [[nodiscard]] const std::string& got() const { return got_; }

 private:
  std::string expected_;
  std::string got_;
};

/// Thrown by the simulator when an algorithm breaks the output contract of
/// the LOCAL model: an end with no announced weight, or the two ends of an
/// edge announcing different weights.
class ModelViolation : public Error {
 public:
  ModelViolation(const std::string& what, std::int64_t node = -1,
                 std::int64_t edge = -1)
      : Error(what), node_(node), edge_(edge) {}

  /// Offending node id, -1 when the violation is edge-scoped.
  [[nodiscard]] std::int64_t node() const { return node_; }
  /// Offending edge/arc id, -1 when the violation is node-scoped.
  [[nodiscard]] std::int64_t edge() const { return edge_; }

 private:
  std::int64_t node_;
  std::int64_t edge_;
};

/// Thrown by the simulator when a run overruns one of its budgets.
class BudgetExceeded : public Error {
 public:
  enum class Kind { kRounds, kMessages, kWallClock };

  BudgetExceeded(const std::string& what, Kind kind, long long limit,
                 long long used)
      : Error(what), kind_(kind), limit_(limit), used_(used) {}

  [[nodiscard]] Kind kind() const { return kind_; }
  /// The configured budget.
  [[nodiscard]] long long limit() const { return limit_; }
  /// What was actually consumed when the budget tripped (microseconds for
  /// the wall-clock kind).
  [[nodiscard]] long long used() const { return used_; }

 private:
  Kind kind_;
  long long limit_;
  long long used_;
};

/// Thrown by a fault plan running in trap mode: identifies the first
/// injected fault instead of letting it silently corrupt the run.
class FaultInjected : public Error {
 public:
  FaultInjected(const std::string& what, std::string fault_class,
                std::int64_t node = -1, std::int64_t edge = -1, int round = 0)
      : Error(what),
        fault_class_(std::move(fault_class)),
        node_(node),
        edge_(edge),
        round_(round) {}

  /// Name of the fault class that fired (see fault/fault_plan.hpp).
  [[nodiscard]] const std::string& fault_class() const { return fault_class_; }
  [[nodiscard]] std::int64_t node() const { return node_; }
  [[nodiscard]] std::int64_t edge() const { return edge_; }
  [[nodiscard]] int round() const { return round_; }

 private:
  std::string fault_class_;
  std::int64_t node_;
  std::int64_t edge_;
  int round_;
};

/// Thrown by the fleet coordinator (fault/fleet.hpp) when worker processes
/// keep failing after the supervised respawn budget is exhausted, or when a
/// single incident is configured as fatal. Carries the incident kind
/// ("exit", "signal", "hang", "corrupt-frame", "spawn") and the worker slot
/// involved; a *single* lost worker is normally transient and never throws
/// — it is respawned and its tasks replayed.
class WorkerLost : public Error {
 public:
  WorkerLost(const std::string& what, std::string incident_kind,
             int worker_slot = -1)
      : Error(what),
        incident_kind_(std::move(incident_kind)),
        worker_slot_(worker_slot) {}

  /// The fault class of the final incident: "exit", "signal", "hang",
  /// "corrupt-frame" or "spawn".
  [[nodiscard]] const std::string& incident_kind() const {
    return incident_kind_;
  }
  /// Coordinator-side worker slot (0-based; -1 when not slot-specific).
  [[nodiscard]] int worker_slot() const { return worker_slot_; }

 private:
  std::string incident_kind_;
  int worker_slot_;
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line,
                                       const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw ContractViolation(os.str());
}
}  // namespace detail

}  // namespace ldlb

/// Precondition check: validates arguments at API boundaries.
#define LDLB_REQUIRE(expr)                                                   \
  do {                                                                       \
    if (!(expr))                                                             \
      ::ldlb::detail::contract_fail("precondition", #expr, __FILE__,         \
                                    __LINE__, "");                           \
  } while (0)

/// Precondition check with an explanatory message.
#define LDLB_REQUIRE_MSG(expr, msg)                                          \
  do {                                                                       \
    if (!(expr)) {                                                           \
      std::ostringstream ldlb_os_;                                           \
      ldlb_os_ << msg;                                                       \
      ::ldlb::detail::contract_fail("precondition", #expr, __FILE__,         \
                                    __LINE__, ldlb_os_.str());               \
    }                                                                        \
  } while (0)

/// Internal invariant check: validates the library's own state.
#define LDLB_ENSURE(expr)                                                    \
  do {                                                                       \
    if (!(expr))                                                             \
      ::ldlb::detail::contract_fail("invariant", #expr, __FILE__, __LINE__,  \
                                    "");                                     \
  } while (0)

/// Internal invariant check with an explanatory message.
#define LDLB_ENSURE_MSG(expr, msg)                                           \
  do {                                                                       \
    if (!(expr)) {                                                           \
      std::ostringstream ldlb_os_;                                           \
      ldlb_os_ << msg;                                                       \
      ::ldlb::detail::contract_fail("invariant", #expr, __FILE__, __LINE__,  \
                                    ldlb_os_.str());                         \
    }                                                                        \
  } while (0)
