// Contract checking and error reporting for the ldlb library.
//
// Preconditions and invariants throw `ldlb::ContractViolation` so that both
// library users and the test suite can observe violated contracts without
// aborting the whole process. These checks guard *logic* errors; they are not
// used for ordinary control flow.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace ldlb {

/// Thrown when a documented precondition or internal invariant is violated.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line,
                                       const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw ContractViolation(os.str());
}
}  // namespace detail

}  // namespace ldlb

/// Precondition check: validates arguments at API boundaries.
#define LDLB_REQUIRE(expr)                                                   \
  do {                                                                       \
    if (!(expr))                                                             \
      ::ldlb::detail::contract_fail("precondition", #expr, __FILE__,         \
                                    __LINE__, "");                           \
  } while (0)

/// Precondition check with an explanatory message.
#define LDLB_REQUIRE_MSG(expr, msg)                                          \
  do {                                                                       \
    if (!(expr)) {                                                           \
      std::ostringstream ldlb_os_;                                           \
      ldlb_os_ << msg;                                                       \
      ::ldlb::detail::contract_fail("precondition", #expr, __FILE__,         \
                                    __LINE__, ldlb_os_.str());               \
    }                                                                        \
  } while (0)

/// Internal invariant check: validates the library's own state.
#define LDLB_ENSURE(expr)                                                    \
  do {                                                                       \
    if (!(expr))                                                             \
      ::ldlb::detail::contract_fail("invariant", #expr, __FILE__, __LINE__,  \
                                    "");                                     \
  } while (0)

/// Internal invariant check with an explanatory message.
#define LDLB_ENSURE_MSG(expr, msg)                                           \
  do {                                                                       \
    if (!(expr)) {                                                           \
      std::ostringstream ldlb_os_;                                           \
      ldlb_os_ << msg;                                                       \
      ::ldlb::detail::contract_fail("invariant", #expr, __FILE__, __LINE__,  \
                                    ldlb_os_.str());                         \
    }                                                                        \
  } while (0)
