#include "ldlb/util/cancellation.hpp"

#include <limits>
#include <sstream>

namespace ldlb {

Deadline Deadline::in(double seconds) {
  LDLB_REQUIRE_MSG(seconds >= 0, "a deadline cannot be in the past");
  Deadline d;
  // ldlb-analyze: allow(determinism): the monotonic clock decides when a
  // run is cut off, never what it computes; certificate bytes are
  // clock-independent by the byte-identical replay tests.
  d.when_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double>(seconds));
  return d;
}

Deadline Deadline::at(Clock::time_point when) {
  Deadline d;
  d.when_ = when;
  return d;
}

double Deadline::remaining_seconds() const {
  if (!when_.has_value()) return std::numeric_limits<double>::infinity();
  // ldlb-analyze: allow(determinism): remaining time only gates cutoff and
  // progress reporting; outputs never embed it.
  return std::chrono::duration<double>(*when_ - Clock::now()).count();
}

void CancellationToken::request_cancel(const std::string& reason) {
  {
    std::lock_guard<std::mutex> lk(mutex_);
    if (cancelled_.load(std::memory_order_relaxed)) return;  // first wins
    reason_ = reason;
  }
  // Release ordering: a thread that observes the flag also observes reason_.
  cancelled_.store(true, std::memory_order_release);
}

bool CancellationToken::cancelled() const {
  if (cancelled_.load(std::memory_order_acquire)) return true;
  if (deadline_.expired()) {
    // Record the deadline as the structured reason; safe to race — the
    // first writer wins and the flag flips exactly once.
    std::ostringstream os;
    os << "deadline of " << -deadline_.remaining_seconds()
       << "s ago exceeded";
    {
      std::lock_guard<std::mutex> lk(mutex_);
      if (!cancelled_.load(std::memory_order_relaxed)) reason_ = os.str();
    }
    cancelled_.store(true, std::memory_order_release);
    return true;
  }
  return false;
}

std::string CancellationToken::reason() const {
  std::lock_guard<std::mutex> lk(mutex_);
  return reason_;
}

void CancellationToken::check() {
  if (!cancelled()) return;
  const std::string why = reason();
  throw Cancelled("run cancelled: " + why, why);
}

}  // namespace ldlb
