// Allocation-failure injection for the exact-arithmetic hot paths.
//
// Real std::bad_alloc is nearly impossible to provoke deterministically in a
// test, yet the BigInt limb vectors and the ball-encoding memo are exactly
// the allocations a long adversary run leans on. ScopedAllocBudget arms a
// *thread-local* byte budget; the library's growth points call
// charge_alloc(bytes) before (logically) allocating, and once the budget is
// exhausted every further charge throws std::bad_alloc — the same failure
// the real allocator would produce, but on demand and reproducibly. The
// guarded layer classifies the resulting throw as RunStatus::kEnvFault.
//
// The budget is thread-local on purpose: a test arms it around the code
// under test without perturbing pool workers, and an unarmed thread pays a
// single thread-local load + branch per charge. Budgets nest; the inner
// scope wins until it is destroyed.
#pragma once

#include <cstddef>
#include <new>

namespace ldlb {

namespace detail {
// -1 = inactive; >= 0 = bytes remaining before charges start throwing.
extern thread_local long long tls_alloc_budget;
}  // namespace detail

/// Arms an allocation budget of `bytes` for the current thread for the
/// lifetime of the object. Nested budgets shadow the outer one.
class ScopedAllocBudget {
 public:
  explicit ScopedAllocBudget(std::size_t bytes)
      : previous_(detail::tls_alloc_budget) {
    detail::tls_alloc_budget = static_cast<long long>(bytes);
  }
  ~ScopedAllocBudget() { detail::tls_alloc_budget = previous_; }

  ScopedAllocBudget(const ScopedAllocBudget&) = delete;
  ScopedAllocBudget& operator=(const ScopedAllocBudget&) = delete;

  /// True when the calling thread currently has a budget armed.
  [[nodiscard]] static bool active() { return detail::tls_alloc_budget >= 0; }

 private:
  long long previous_;
};

/// Charges `bytes` against the calling thread's budget, throwing
/// std::bad_alloc once it is exhausted. No-op (one load + branch) when no
/// budget is armed.
inline void charge_alloc(std::size_t bytes) {
  long long& budget = detail::tls_alloc_budget;
  if (budget < 0) return;
  budget -= static_cast<long long>(bytes);
  if (budget < 0) {
    budget = 0;  // keep throwing on every further charge in this scope
    throw std::bad_alloc{};
  }
}

}  // namespace ldlb
