// Dependency-free TCP transport speaking the LDF1 frame protocol.
//
// The fleet's pipe transport (util/ipc) only reaches forked children on the
// same host. This module carries the *same* 20-byte checksummed frames over
// TCP sockets so workers can live anywhere — and confines every raw socket
// syscall (socket/bind/listen/accept/connect/setsockopt) to this one file,
// enforced by the raw-socket lint rule, so the tree has exactly one audited
// place where bytes meet the network.
//
//   * Framing: FrameChannel::send/recv reuse ipc::encode_frame /
//     ipc::read_frame, so damage on the wire — torn writes, bit flips,
//     foreign peers — classifies into the same kOk/kEof/kTimeout/kCorrupt
//     taxonomy the pipe fleet already survives. Nothing reads as silent
//     garbage.
//   * Deadlines: connects, accepts and reads are poll(2)-driven against
//     monotonic Deadlines (util/cancellation.hpp); a dead router surfaces
//     as kTimeout, never a hang.
//   * Heartbeats: an idle peer sends small heartbeat frames; recv consumes
//     them transparently and tracks a staleness window, so a peer that
//     stops breathing mid-wait surfaces as a *stale* timeout the fleet can
//     classify separately from an ordinary slow reply.
//   * Handshake: every connection opens with a versioned hello/welcome
//     exchange carrying the protocol version and a run fingerprint;
//     mismatches throw the typed HandshakeMismatch before any work is
//     sharded.
//   * Faults: a process-wide NetFaultInjector seam (mirroring
//     FsFaultInjector in util/atomic_file) lets tests inject
//     connect-refused, mid-frame disconnect, byte corruption, delay and
//     partition at the two audited call sites (connect_channel,
//     FrameChannel::send).
//
// Addresses are numeric IPv4 ("127.0.0.1") or the literal "localhost"; the
// fleet's remote endpoints are explicit host:port pairs, so no resolver —
// and no resolver's nondeterminism — is pulled in.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "ldlb/util/cancellation.hpp"
#include "ldlb/util/ipc.hpp"

namespace ldlb::net {

/// Bumped whenever the wire protocol (framing, handshake, request grammar)
/// changes incompatibly; the handshake rejects any other version.
inline constexpr std::uint64_t kNetProtocolVersion = 1;

/// Payload of a heartbeat frame. recv() consumes these transparently;
/// exposed so tests can forge or count them.
inline constexpr std::string_view kHeartbeatPayload = "ldlb-hb";

/// Injection seam for network faults, mirroring FsFaultInjector
/// (util/atomic_file). A process-wide injector — installed via
/// set_net_fault_injector, normally through fault/net_fault's scoped
/// helper — sees every outbound connect and every outbound frame, and may
/// refuse, corrupt, delay, drop or cut them. Production runs have no
/// injector and pay one pointer test per call site.
class NetFaultInjector {
 public:
  virtual ~NetFaultInjector() = default;

  /// Called before connect(2); throw IoError (e.g. ECONNREFUSED) to
  /// simulate a refused or unreachable endpoint.
  virtual void on_connect(const std::string& host, int port);

  /// What to do with one outbound frame (beyond in-place corruption).
  struct SendAction {
    double delay_seconds = 0;  ///< sleep this long before writing (slow link)
    bool drop = false;         ///< partition: the frame never hits the wire
    /// >= 0: write only this prefix, then hard-close the socket — a
    /// mid-frame disconnect exactly as a crashing peer would produce.
    long truncate_at = -1;
  };

  /// Called with the fully encoded frame (header + payload) before it is
  /// written; may flip bytes in place and/or return a SendAction.
  virtual SendAction on_send(std::string& frame);
};

/// The installed injector (nullptr when none).
[[nodiscard]] NetFaultInjector* net_fault_injector();

/// Installs `injector` process-wide (nullptr uninstalls). Not thread-safe
/// against concurrent sends; tests install before spawning traffic.
void set_net_fault_injector(NetFaultInjector* injector);

/// Result of one recv(): the classified frame, plus whether a configured
/// staleness window elapsed without even a heartbeat (frame.status is then
/// kTimeout and the peer should be treated as lost, not merely slow).
struct RecvResult {
  ipc::FrameResult frame;
  bool stale = false;
};

/// One connected TCP peer carrying LDF1 frames. Move-only; the destructor
/// closes the socket.
class FrameChannel {
 public:
  FrameChannel() = default;
  /// Adopts an already-connected socket descriptor.
  explicit FrameChannel(int fd) : fd_(fd) {}
  FrameChannel(FrameChannel&& other) noexcept;
  FrameChannel& operator=(FrameChannel&& other) noexcept;
  FrameChannel(const FrameChannel&) = delete;
  FrameChannel& operator=(const FrameChannel&) = delete;
  ~FrameChannel();

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] int fd() const { return fd_; }

  /// Sends one frame, retrying short writes and EINTR; routed through the
  /// fault injector. Throws IoError when the peer is gone (EPIPE/
  /// ECONNRESET) or a fault cuts the stream — callers treat that as a lost
  /// peer and reconnect.
  void send(std::string_view payload);

  /// Sends a heartbeat frame (peers consume it inside recv).
  void send_heartbeat() { send(kHeartbeatPayload); }

  /// Reads one non-heartbeat frame, polling until `deadline`. Heartbeat
  /// frames are consumed silently and refresh the staleness window; with
  /// `stale_after > 0`, going that long without *any* complete frame (data
  /// or heartbeat) returns kTimeout with `stale = true`. The readability
  /// poll never consumes bytes, so a plain timeout leaves the stream
  /// intact and the frame can still be read later.
  [[nodiscard]] RecvResult recv(const Deadline& deadline = {},
                                double stale_after = 0);

  /// Graceful close (idempotent).
  void close();

  /// Abortive close: RST instead of FIN, so the peer sees ECONNRESET
  /// immediately. The chaos hooks use this to simulate a yanked cable.
  void hard_close();

 private:
  int fd_ = -1;
};

/// A listening TCP socket handing out FrameChannels. Move-only.
class Listener {
 public:
  Listener() = default;
  Listener(Listener&& other) noexcept;
  Listener& operator=(Listener&& other) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;
  ~Listener();

  /// Binds and listens on host:port (port 0 picks an ephemeral port — read
  /// it back with port()). Throws IoError when the socket calls refuse.
  [[nodiscard]] static Listener on(const std::string& host, int port);

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] int fd() const { return fd_; }
  /// The actual bound port (resolves port-0 requests).
  [[nodiscard]] int port() const { return port_; }

  /// Accepts one connection, polling until `deadline`; nullopt on timeout.
  [[nodiscard]] std::optional<FrameChannel> accept_channel(
      const Deadline& deadline = {});

  void close();

 private:
  int fd_ = -1;
  int port_ = 0;
};

/// Connects to host:port, polling the non-blocking connect against
/// `deadline`. Throws IoError on refusal/timeout (routed through the fault
/// injector's on_connect first).
[[nodiscard]] FrameChannel connect_channel(const std::string& host, int port,
                                           const Deadline& deadline = {});

/// Client side of the versioned handshake: sends
/// "ldlb-net hello <version> <fingerprint>" and expects the matching
/// welcome. Throws HandshakeMismatch when the peer rejects or announces a
/// different version/fingerprint, IoError when the stream dies first.
void client_handshake(FrameChannel& channel, std::uint64_t fingerprint,
                      const Deadline& deadline);

/// Server side: expects the hello; on match replies
/// "ldlb-net welcome <version> <fingerprint>", on mismatch replies
/// "ldlb-net reject <version> <fingerprint> <reason>" and throws
/// HandshakeMismatch.
void server_handshake(FrameChannel& channel, std::uint64_t fingerprint,
                      const Deadline& deadline);

}  // namespace ldlb::net
