#include "ldlb/util/bigint.hpp"

#include <algorithm>
#include <cctype>
#include <ostream>

#include "ldlb/util/error.hpp"

namespace ldlb {

namespace {
constexpr std::uint64_t kBase = std::uint64_t{1} << 32;
}  // namespace

BigInt::BigInt(std::int64_t value) {
  negative_ = value < 0;
  // Avoid overflow on INT64_MIN by working in uint64.
  std::uint64_t mag =
      negative_ ? ~static_cast<std::uint64_t>(value) + 1
                : static_cast<std::uint64_t>(value);
  while (mag != 0) {
    limbs_.push_back(static_cast<std::uint32_t>(mag & 0xffffffffu));
    mag >>= 32;
  }
  normalize();
}

BigInt BigInt::from_string(const std::string& text) {
  LDLB_REQUIRE_MSG(!text.empty(), "empty string is not a number");
  std::size_t i = 0;
  bool neg = false;
  if (text[0] == '-' || text[0] == '+') {
    neg = text[0] == '-';
    i = 1;
  }
  LDLB_REQUIRE_MSG(i < text.size(), "sign without digits: " << text);
  BigInt result;
  const BigInt ten{10};
  for (; i < text.size(); ++i) {
    LDLB_REQUIRE_MSG(std::isdigit(static_cast<unsigned char>(text[i])),
                     "malformed integer literal: " << text);
    result *= ten;
    result += BigInt{text[i] - '0'};
  }
  if (neg && !result.is_zero()) result.negative_ = true;
  return result;
}

BigInt BigInt::abs() const {
  BigInt r = *this;
  r.negative_ = false;
  return r;
}

BigInt BigInt::negated() const {
  BigInt r = *this;
  if (!r.is_zero()) r.negative_ = !r.negative_;
  return r;
}

void BigInt::trim(std::vector<std::uint32_t>& limbs) {
  while (!limbs.empty() && limbs.back() == 0) limbs.pop_back();
}

void BigInt::normalize() {
  trim(limbs_);
  if (limbs_.empty()) negative_ = false;
}

int BigInt::mag_cmp(const std::vector<std::uint32_t>& a,
                    const std::vector<std::uint32_t>& b) {
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  for (std::size_t i = a.size(); i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

std::vector<std::uint32_t> BigInt::mag_add(
    const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b) {
  std::vector<std::uint32_t> out;
  out.reserve(std::max(a.size(), b.size()) + 1);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < std::max(a.size(), b.size()); ++i) {
    std::uint64_t sum = carry;
    if (i < a.size()) sum += a[i];
    if (i < b.size()) sum += b[i];
    out.push_back(static_cast<std::uint32_t>(sum & 0xffffffffu));
    carry = sum >> 32;
  }
  if (carry != 0) out.push_back(static_cast<std::uint32_t>(carry));
  return out;
}

std::vector<std::uint32_t> BigInt::mag_sub(
    const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b) {
  LDLB_ENSURE(mag_cmp(a, b) >= 0);
  std::vector<std::uint32_t> out;
  out.reserve(a.size());
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::int64_t diff = static_cast<std::int64_t>(a[i]) - borrow -
                        (i < b.size() ? static_cast<std::int64_t>(b[i]) : 0);
    if (diff < 0) {
      diff += static_cast<std::int64_t>(kBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.push_back(static_cast<std::uint32_t>(diff));
  }
  trim(out);
  return out;
}

std::vector<std::uint32_t> BigInt::mag_mul(
    const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b) {
  if (a.empty() || b.empty()) return {};
  std::vector<std::uint32_t> out(a.size() + b.size(), 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < b.size(); ++j) {
      std::uint64_t cur = static_cast<std::uint64_t>(a[i]) * b[j] +
                          out[i + j] + carry;
      out[i + j] = static_cast<std::uint32_t>(cur & 0xffffffffu);
      carry = cur >> 32;
    }
    std::size_t k = i + b.size();
    while (carry != 0) {
      std::uint64_t cur = out[k] + carry;
      out[k] = static_cast<std::uint32_t>(cur & 0xffffffffu);
      carry = cur >> 32;
      ++k;
    }
  }
  trim(out);
  return out;
}

std::pair<std::vector<std::uint32_t>, std::vector<std::uint32_t>>
BigInt::mag_divmod(const std::vector<std::uint32_t>& a,
                   const std::vector<std::uint32_t>& b) {
  LDLB_REQUIRE_MSG(!b.empty(), "division by zero");
  if (mag_cmp(a, b) < 0) return {{}, a};

  // Bit-by-bit long division: simple and fully portable. Operands in this
  // library are at most a few dozen limbs, so O(bits * limbs) is fine.
  std::vector<std::uint32_t> quotient(a.size(), 0);
  std::vector<std::uint32_t> remainder;
  for (std::size_t bit = a.size() * 32; bit-- > 0;) {
    // remainder = remainder * 2 + bit_of(a, bit)
    std::uint32_t carry = (a[bit / 32] >> (bit % 32)) & 1u;
    for (std::size_t i = 0; i < remainder.size(); ++i) {
      std::uint32_t next_carry = remainder[i] >> 31;
      remainder[i] = (remainder[i] << 1) | carry;
      carry = next_carry;
    }
    if (carry != 0) remainder.push_back(carry);
    trim(remainder);
    if (mag_cmp(remainder, b) >= 0) {
      remainder = mag_sub(remainder, b);
      quotient[bit / 32] |= (std::uint32_t{1} << (bit % 32));
    }
  }
  trim(quotient);
  return {quotient, remainder};
}

BigInt& BigInt::operator+=(const BigInt& rhs) {
  if (negative_ == rhs.negative_) {
    limbs_ = mag_add(limbs_, rhs.limbs_);
  } else if (mag_cmp(limbs_, rhs.limbs_) >= 0) {
    limbs_ = mag_sub(limbs_, rhs.limbs_);
  } else {
    limbs_ = mag_sub(rhs.limbs_, limbs_);
    negative_ = rhs.negative_;
  }
  normalize();
  return *this;
}

BigInt& BigInt::operator-=(const BigInt& rhs) { return *this += rhs.negated(); }

BigInt& BigInt::operator*=(const BigInt& rhs) {
  negative_ = negative_ != rhs.negative_;
  limbs_ = mag_mul(limbs_, rhs.limbs_);
  normalize();
  return *this;
}

BigInt& BigInt::operator/=(const BigInt& rhs) {
  bool neg = negative_ != rhs.negative_;
  limbs_ = mag_divmod(limbs_, rhs.limbs_).first;
  negative_ = neg;
  normalize();
  return *this;
}

BigInt& BigInt::operator%=(const BigInt& rhs) {
  // Sign of the remainder follows the dividend (truncated division).
  bool neg = negative_;
  limbs_ = mag_divmod(limbs_, rhs.limbs_).second;
  negative_ = neg;
  normalize();
  return *this;
}

std::strong_ordering operator<=>(const BigInt& lhs, const BigInt& rhs) {
  if (lhs.negative_ != rhs.negative_) {
    return lhs.negative_ ? std::strong_ordering::less
                         : std::strong_ordering::greater;
  }
  int mag = BigInt::mag_cmp(lhs.limbs_, rhs.limbs_);
  if (lhs.negative_) mag = -mag;
  if (mag < 0) return std::strong_ordering::less;
  if (mag > 0) return std::strong_ordering::greater;
  return std::strong_ordering::equal;
}

BigInt BigInt::gcd(BigInt a, BigInt b) {
  a.negative_ = false;
  b.negative_ = false;
  while (!b.is_zero()) {
    BigInt r = a % b;
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

BigInt BigInt::pow2(unsigned k) {
  BigInt r;
  r.limbs_.assign(k / 32 + 1, 0);
  r.limbs_[k / 32] = std::uint32_t{1} << (k % 32);
  r.normalize();
  return r;
}

std::string BigInt::to_string() const {
  if (is_zero()) return "0";
  std::vector<std::uint32_t> mag = limbs_;
  std::string digits;
  const std::vector<std::uint32_t> ten{10};
  while (!mag.empty()) {
    auto [q, r] = mag_divmod(mag, ten);
    digits.push_back(static_cast<char>('0' + (r.empty() ? 0 : r[0])));
    mag = std::move(q);
  }
  if (negative_) digits.push_back('-');
  std::reverse(digits.begin(), digits.end());
  return digits;
}

bool BigInt::fits_int64() const {
  if (limbs_.size() < 2) return true;
  if (limbs_.size() > 2) return false;
  std::uint64_t mag = (static_cast<std::uint64_t>(limbs_[1]) << 32) | limbs_[0];
  return negative_ ? mag <= (std::uint64_t{1} << 63)
                   : mag < (std::uint64_t{1} << 63);
}

std::int64_t BigInt::to_int64() const {
  LDLB_REQUIRE_MSG(fits_int64(), "BigInt does not fit into int64: "
                                     << to_string());
  std::uint64_t mag = 0;
  if (!limbs_.empty()) mag = limbs_[0];
  if (limbs_.size() == 2) mag |= static_cast<std::uint64_t>(limbs_[1]) << 32;
  return negative_ ? -static_cast<std::int64_t>(mag - 1) - 1
                   : static_cast<std::int64_t>(mag);
}

std::size_t BigInt::hash() const {
  std::size_t h = negative_ ? 0x9e3779b97f4a7c15ull : 0;
  for (std::uint32_t limb : limbs_) {
    h ^= limb + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  }
  return h;
}

std::ostream& operator<<(std::ostream& os, const BigInt& value) {
  return os << value.to_string();
}

}  // namespace ldlb
