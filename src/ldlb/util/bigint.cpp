#include "ldlb/util/bigint.hpp"

#include <algorithm>
#include <cctype>
#include <limits>
#include <ostream>

#include "ldlb/util/alloc_guard.hpp"
#include "ldlb/util/error.hpp"

namespace ldlb {

namespace {

constexpr std::uint64_t kBase = std::uint64_t{1} << 32;

// Binary GCD on machine words: no divisions, only shifts and subtractions.
std::uint64_t gcd_word(std::uint64_t a, std::uint64_t b) {
  if (a == 0) return b;
  if (b == 0) return a;
  const int shift = __builtin_ctzll(a | b);
  a >>= __builtin_ctzll(a);
  do {
    b >>= __builtin_ctzll(b);
    if (a > b) std::swap(a, b);
    b -= a;
  } while (b != 0);
  return a << shift;
}

}  // namespace

BigInt BigInt::from_magnitude(bool negative, std::uint64_t magnitude) {
  BigInt r;
  r.small_ = magnitude;
  r.negative_ = negative && magnitude != 0;
  return r;
}

std::vector<std::uint32_t> BigInt::magnitude_limbs() const {
  if (!is_small()) return limbs_;
  std::vector<std::uint32_t> out;
  if (small_ != 0) out.push_back(static_cast<std::uint32_t>(small_));
  if (small_ >> 32 != 0) out.push_back(static_cast<std::uint32_t>(small_ >> 32));
  return out;
}

void BigInt::set_magnitude(std::vector<std::uint32_t> limbs) {
  trim(limbs);
  if (limbs.size() <= 2) {
    small_ = limbs.empty()
                 ? 0
                 : (limbs.size() == 2
                        ? (static_cast<std::uint64_t>(limbs[1]) << 32) | limbs[0]
                        : limbs[0]);
    limbs_.clear();
  } else {
    // The one growth point of exact arithmetic: observing the thread-local
    // allocation budget here lets the env-fault tests starve a run's BigInt
    // limbs deterministically (util/alloc_guard.hpp).
    charge_alloc(limbs.size() * sizeof(std::uint32_t));
    small_ = 0;
    limbs_ = std::move(limbs);
  }
  if (is_zero()) negative_ = false;
}

BigInt BigInt::from_string(const std::string& text) {
  LDLB_REQUIRE_MSG(!text.empty(), "empty string is not a number");
  std::size_t i = 0;
  bool neg = false;
  if (text[0] == '-' || text[0] == '+') {
    neg = text[0] == '-';
    i = 1;
  }
  LDLB_REQUIRE_MSG(i < text.size(), "sign without digits: " << text);
  BigInt result;
  // Consume up to 9 digits per step so the accumulator multiplications stay
  // on the inline fast path until the value genuinely outgrows it.
  while (i < text.size()) {
    std::uint64_t chunk = 0;
    std::uint64_t scale = 1;
    for (int d = 0; d < 9 && i < text.size(); ++d, ++i) {
      LDLB_REQUIRE_MSG(std::isdigit(static_cast<unsigned char>(text[i])),
                       "malformed integer literal: " << text);
      chunk = chunk * 10 + static_cast<std::uint64_t>(text[i] - '0');
      scale *= 10;
    }
    result *= BigInt{static_cast<std::int64_t>(scale)};
    result += BigInt{static_cast<std::int64_t>(chunk)};
  }
  if (neg && !result.is_zero()) result.negative_ = true;
  return result;
}

BigInt BigInt::abs() const {
  BigInt r = *this;
  r.negative_ = false;
  return r;
}

BigInt BigInt::negated() const {
  BigInt r = *this;
  if (!r.is_zero()) r.negative_ = !r.negative_;
  return r;
}

void BigInt::trim(std::vector<std::uint32_t>& limbs) {
  while (!limbs.empty() && limbs.back() == 0) limbs.pop_back();
}

int BigInt::mag_cmp(const std::vector<std::uint32_t>& a,
                    const std::vector<std::uint32_t>& b) {
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  for (std::size_t i = a.size(); i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

std::vector<std::uint32_t> BigInt::mag_add(
    const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b) {
  std::vector<std::uint32_t> out;
  out.reserve(std::max(a.size(), b.size()) + 1);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < std::max(a.size(), b.size()); ++i) {
    std::uint64_t sum = carry;
    if (i < a.size()) sum += a[i];
    if (i < b.size()) sum += b[i];
    out.push_back(static_cast<std::uint32_t>(sum & 0xffffffffu));
    carry = sum >> 32;
  }
  if (carry != 0) out.push_back(static_cast<std::uint32_t>(carry));
  return out;
}

std::vector<std::uint32_t> BigInt::mag_sub(
    const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b) {
  LDLB_ENSURE(mag_cmp(a, b) >= 0);
  std::vector<std::uint32_t> out;
  out.reserve(a.size());
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::int64_t diff = static_cast<std::int64_t>(a[i]) - borrow -
                        (i < b.size() ? static_cast<std::int64_t>(b[i]) : 0);
    if (diff < 0) {
      diff += static_cast<std::int64_t>(kBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.push_back(static_cast<std::uint32_t>(diff));
  }
  trim(out);
  return out;
}

std::vector<std::uint32_t> BigInt::mag_mul(
    const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b) {
  if (a.empty() || b.empty()) return {};
  std::vector<std::uint32_t> out(a.size() + b.size(), 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < b.size(); ++j) {
      std::uint64_t cur = static_cast<std::uint64_t>(a[i]) * b[j] +
                          out[i + j] + carry;
      out[i + j] = static_cast<std::uint32_t>(cur & 0xffffffffu);
      carry = cur >> 32;
    }
    std::size_t k = i + b.size();
    while (carry != 0) {
      std::uint64_t cur = out[k] + carry;
      out[k] = static_cast<std::uint32_t>(cur & 0xffffffffu);
      carry = cur >> 32;
      ++k;
    }
  }
  trim(out);
  return out;
}

std::pair<std::vector<std::uint32_t>, std::uint64_t> BigInt::mag_divmod_word(
    const std::vector<std::uint32_t>& a, std::uint64_t d) {
  LDLB_REQUIRE_MSG(d != 0, "division by zero");
  std::vector<std::uint32_t> quotient(a.size(), 0);
  std::uint64_t rem = 0;
  for (std::size_t i = a.size(); i-- > 0;) {
    // rem < d <= 2^64, so (rem << 32) | limb fits 128 bits and the partial
    // quotient fits one limb.
    unsigned __int128 cur =
        (static_cast<unsigned __int128>(rem) << 32) | a[i];
    quotient[i] = static_cast<std::uint32_t>(cur / d);
    rem = static_cast<std::uint64_t>(cur % d);
  }
  trim(quotient);
  return {std::move(quotient), rem};
}

std::pair<std::vector<std::uint32_t>, std::vector<std::uint32_t>>
BigInt::mag_divmod(const std::vector<std::uint32_t>& a,
                   const std::vector<std::uint32_t>& b) {
  LDLB_REQUIRE_MSG(!b.empty(), "division by zero");
  if (mag_cmp(a, b) < 0) return {{}, a};
  if (b.size() <= 2) {
    const std::uint64_t d =
        b.size() == 2 ? (static_cast<std::uint64_t>(b[1]) << 32) | b[0] : b[0];
    auto [q, r] = mag_divmod_word(a, d);
    std::vector<std::uint32_t> rem;
    if (r != 0) rem.push_back(static_cast<std::uint32_t>(r));
    if (r >> 32 != 0) rem.push_back(static_cast<std::uint32_t>(r >> 32));
    return {std::move(q), std::move(rem)};
  }

  // Bit-by-bit long division: simple and fully portable. Multi-limb
  // divisors are rare in this library (weights stay word-sized), so
  // O(bits * limbs) is fine.
  std::vector<std::uint32_t> quotient(a.size(), 0);
  std::vector<std::uint32_t> remainder;
  for (std::size_t bit = a.size() * 32; bit-- > 0;) {
    // remainder = remainder * 2 + bit_of(a, bit)
    std::uint32_t carry = (a[bit / 32] >> (bit % 32)) & 1u;
    for (std::size_t i = 0; i < remainder.size(); ++i) {
      std::uint32_t next_carry = remainder[i] >> 31;
      remainder[i] = (remainder[i] << 1) | carry;
      carry = next_carry;
    }
    if (carry != 0) remainder.push_back(carry);
    trim(remainder);
    if (mag_cmp(remainder, b) >= 0) {
      remainder = mag_sub(remainder, b);
      quotient[bit / 32] |= (std::uint32_t{1} << (bit % 32));
    }
  }
  trim(quotient);
  return {quotient, remainder};
}

BigInt& BigInt::operator+=(const BigInt& rhs) {
  if (is_small() && rhs.is_small()) {
    if (negative_ == rhs.negative_) {
      std::uint64_t sum = 0;
      if (!__builtin_add_overflow(small_, rhs.small_, &sum)) {
        small_ = sum;
        if (small_ == 0) negative_ = false;
        return *this;
      }
      // Magnitude overflowed one word: fall through to the limb path.
    } else {
      if (small_ >= rhs.small_) {
        small_ -= rhs.small_;
      } else {
        small_ = rhs.small_ - small_;
        negative_ = rhs.negative_;
      }
      if (small_ == 0) negative_ = false;
      return *this;
    }
  }
  std::vector<std::uint32_t> a = magnitude_limbs();
  std::vector<std::uint32_t> b = rhs.magnitude_limbs();
  if (negative_ == rhs.negative_) {
    set_magnitude(mag_add(a, b));
  } else if (mag_cmp(a, b) >= 0) {
    set_magnitude(mag_sub(a, b));
  } else {
    negative_ = rhs.negative_;
    set_magnitude(mag_sub(b, a));
  }
  return *this;
}

BigInt& BigInt::operator-=(const BigInt& rhs) { return *this += rhs.negated(); }

BigInt& BigInt::operator*=(const BigInt& rhs) {
  negative_ = negative_ != rhs.negative_;
  if (is_small() && rhs.is_small()) {
    const unsigned __int128 prod =
        static_cast<unsigned __int128>(small_) * rhs.small_;
    if (prod <= std::numeric_limits<std::uint64_t>::max()) {
      small_ = static_cast<std::uint64_t>(prod);
      if (small_ == 0) negative_ = false;
      return *this;
    }
    set_magnitude({static_cast<std::uint32_t>(prod),
                   static_cast<std::uint32_t>(prod >> 32),
                   static_cast<std::uint32_t>(prod >> 64),
                   static_cast<std::uint32_t>(prod >> 96)});
    return *this;
  }
  set_magnitude(mag_mul(magnitude_limbs(), rhs.magnitude_limbs()));
  return *this;
}

BigInt& BigInt::operator/=(const BigInt& rhs) {
  LDLB_REQUIRE_MSG(!rhs.is_zero(), "division by zero");
  negative_ = negative_ != rhs.negative_;
  if (is_small() && rhs.is_small()) {
    small_ /= rhs.small_;
    if (small_ == 0) negative_ = false;
    return *this;
  }
  if (rhs.is_small()) {
    set_magnitude(mag_divmod_word(magnitude_limbs(), rhs.small_).first);
    return *this;
  }
  set_magnitude(mag_divmod(magnitude_limbs(), rhs.magnitude_limbs()).first);
  return *this;
}

BigInt& BigInt::operator%=(const BigInt& rhs) {
  LDLB_REQUIRE_MSG(!rhs.is_zero(), "division by zero");
  // Sign of the remainder follows the dividend (truncated division).
  if (is_small() && rhs.is_small()) {
    small_ %= rhs.small_;
    if (small_ == 0) negative_ = false;
    return *this;
  }
  if (rhs.is_small()) {
    const std::uint64_t r =
        mag_divmod_word(magnitude_limbs(), rhs.small_).second;
    const bool neg = negative_;
    limbs_.clear();
    small_ = r;
    negative_ = neg && r != 0;
    return *this;
  }
  set_magnitude(mag_divmod(magnitude_limbs(), rhs.magnitude_limbs()).second);
  return *this;
}

std::strong_ordering operator<=>(const BigInt& lhs, const BigInt& rhs) {
  if (lhs.negative_ != rhs.negative_) {
    return lhs.negative_ ? std::strong_ordering::less
                         : std::strong_ordering::greater;
  }
  int mag = 0;
  if (lhs.is_small() && rhs.is_small()) {
    mag = lhs.small_ == rhs.small_ ? 0 : (lhs.small_ < rhs.small_ ? -1 : 1);
  } else if (lhs.is_small()) {
    mag = -1;  // any spilled magnitude exceeds one word
  } else if (rhs.is_small()) {
    mag = 1;
  } else {
    mag = BigInt::mag_cmp(lhs.limbs_, rhs.limbs_);
  }
  if (lhs.negative_) mag = -mag;
  if (mag < 0) return std::strong_ordering::less;
  if (mag > 0) return std::strong_ordering::greater;
  return std::strong_ordering::equal;
}

BigInt BigInt::gcd(BigInt a, BigInt b) {
  a.negative_ = false;
  b.negative_ = false;
  // Euclid steps shrink spilled operands to word size fast; binary GCD
  // finishes on machine words without any division.
  while (!a.is_small() || !b.is_small()) {
    if (b.is_zero()) return a;
    BigInt r = a % b;
    a = std::move(b);
    b = std::move(r);
  }
  return from_magnitude(false, gcd_word(a.small_, b.small_));
}

BigInt BigInt::pow2(unsigned k) {
  if (k < 64) return from_magnitude(false, std::uint64_t{1} << k);
  BigInt r;
  std::vector<std::uint32_t> limbs(k / 32 + 1, 0);
  limbs[k / 32] = std::uint32_t{1} << (k % 32);
  r.set_magnitude(std::move(limbs));
  return r;
}

std::string BigInt::to_string() const {
  if (is_zero()) return "0";
  if (is_small()) {
    std::string digits = std::to_string(small_);
    return negative_ ? "-" + digits : digits;
  }
  // Peel nine decimal digits per word division.
  constexpr std::uint64_t kChunk = 1000000000;
  std::vector<std::uint32_t> mag = limbs_;
  std::string digits;
  while (!mag.empty()) {
    auto [q, r] = mag_divmod_word(mag, kChunk);
    mag = std::move(q);
    if (mag.empty()) {
      std::string head = std::to_string(r);
      digits.insert(0, head);
    } else {
      std::string part = std::to_string(r);
      digits.insert(0, std::string(9 - part.size(), '0') + part);
    }
  }
  return negative_ ? "-" + digits : digits;
}

bool BigInt::fits_int64() const {
  if (!is_small()) return false;
  return negative_ ? small_ <= (std::uint64_t{1} << 63)
                   : small_ < (std::uint64_t{1} << 63);
}

std::int64_t BigInt::to_int64() const {
  LDLB_REQUIRE_MSG(fits_int64(), "BigInt does not fit into int64: "
                                     << to_string());
  return negative_ ? -static_cast<std::int64_t>(small_ - 1) - 1
                   : static_cast<std::int64_t>(small_);
}

std::size_t BigInt::hash() const {
  std::size_t h = negative_ ? 0x9e3779b97f4a7c15ull : 0;
  auto mix = [&h](std::uint32_t limb) {
    h ^= limb + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  };
  if (is_small()) {
    // Mirror the limb walk so equal values hash equally however produced.
    if (small_ != 0) mix(static_cast<std::uint32_t>(small_));
    if (small_ >> 32 != 0) mix(static_cast<std::uint32_t>(small_ >> 32));
  } else {
    for (std::uint32_t limb : limbs_) mix(limb);
  }
  return h;
}

std::ostream& operator<<(std::ostream& os, const BigInt& value) {
  return os << value.to_string();
}

}  // namespace ldlb
