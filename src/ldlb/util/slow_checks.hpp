// Opt-in latch for redundant self-checks on hot construction paths.
//
// A few internal invariants (covering-property of straight-line lifts,
// forest-ness of a certificate graph minus one loop) are implied by how the
// adversary builds its inputs, yet re-deriving them costs as much as the
// surrounding work — together they dominated the Δ=12 profile. They stay
// available as debug oracles behind this latch instead of being deleted:
// set LDLB_SLOW_CHECKS=1 (or the older, narrower LDLB_LIFT_CHECK=1), or run
// under LDLB_BALL_ORACLE=1 — the cross-validation suite wants every
// redundant invariant live. Certificate validation performs its own,
// always-on forest/covering checks regardless of this latch.
#pragma once

#include <cstdlib>
#include <initializer_list>

namespace ldlb {

inline bool slow_checks_enabled() {
  static const bool enabled = [] {
    for (const char* var :
         {"LDLB_SLOW_CHECKS", "LDLB_LIFT_CHECK", "LDLB_BALL_ORACLE"}) {
      // ldlb-analyze: allow(determinism): latched once; only toggles extra
      // validation that aborts on disagreement, never changes results.
      const char* s = std::getenv(var);
      if (s != nullptr && *s != '\0' && *s != '0') return true;
    }
    return false;
  }();
  return enabled;
}

}  // namespace ldlb
