#include "ldlb/util/ipc.hpp"

#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <exception>
#include <sstream>

#include "ldlb/util/checksum.hpp"
#include "ldlb/util/error.hpp"
#include "ldlb/util/thread_pool.hpp"

namespace ldlb::ipc {

namespace {

// 20-byte little-endian frame header: magic, payload length, payload
// checksum. The magic doubles as a resynchronisation sanity check — a
// reader that sees anything else is looking at a torn or foreign stream.
constexpr char kMagic[4] = {'L', 'D', 'F', '1'};
constexpr std::size_t kHeaderBytes = 4 + 8 + 8;

int g_spawn_failures_for_test = 0;

void put_u64(char* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out[i] = static_cast<char>((v >> (8 * i)) & 0xff);
}

std::uint64_t get_u64(const char* in) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(in[i]))
         << (8 * i);
  }
  return v;
}

[[noreturn]] void throw_io(const char* op, int fd, int err) {
  std::ostringstream os;
  os << "ipc " << op << " on fd " << fd << " failed: " << std::strerror(err);
  throw IoError(os.str(), "<pipe>", err);
}

// Remaining budget of `deadline` as a poll(2) timeout in ms: -1 blocks
// indefinitely for the unset deadline, 0 polls, positive waits (capped so a
// clock-sized double cannot overflow the int).
int poll_timeout_ms(const Deadline& deadline) {
  if (!deadline.is_set()) return -1;
  const double remaining = deadline.remaining_seconds();
  if (remaining <= 0) return 0;
  const double ms = remaining * 1000.0;
  return ms >= 1e9 ? 1000000000 : static_cast<int>(ms) + 1;
}

// Fills `out[0..n)` from fd, polling until `deadline`. Returns kOk, or the
// classified failure. `what` names the piece being read for diagnostics.
FrameStatus read_exact(int fd, char* out, std::size_t n,
                       const Deadline& deadline, const char* what,
                       std::string& detail) {
  std::size_t got = 0;
  while (got < n) {
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int ready = ::poll(&pfd, 1, poll_timeout_ms(deadline));
    if (ready < 0) {
      if (errno == EINTR) continue;
      throw_io("poll", fd, errno);
    }
    if (ready == 0) {
      std::ostringstream os;
      os << "deadline expired with " << got << "/" << n << " bytes of "
         << what;
      detail = os.str();
      return FrameStatus::kTimeout;
    }
    const ssize_t r = ::read(fd, out + got, n - got);
    if (r < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      throw_io("read", fd, errno);
    }
    if (r == 0) {
      std::ostringstream os;
      os << "peer closed the pipe with " << got << "/" << n << " bytes of "
         << what;
      detail = os.str();
      return got == 0 && n == kHeaderBytes ? FrameStatus::kEof
                                           : FrameStatus::kCorrupt;
    }
    got += static_cast<std::size_t>(r);
  }
  return FrameStatus::kOk;
}

}  // namespace

const char* to_string(FrameStatus status) {
  switch (status) {
    case FrameStatus::kOk:
      return "ok";
    case FrameStatus::kEof:
      return "eof";
    case FrameStatus::kTimeout:
      return "timeout";
    case FrameStatus::kCorrupt:
      return "corrupt-frame";
  }
  return "unknown";
}

std::string encode_frame(std::string_view payload) {
  std::string out;
  out.resize(kHeaderBytes + payload.size());
  std::memcpy(out.data(), kMagic, 4);
  put_u64(out.data() + 4, payload.size());
  put_u64(out.data() + 12, fnv1a_64(payload));
  std::memcpy(out.data() + kHeaderBytes, payload.data(), payload.size());
  return out;
}

void write_frame(int fd, std::string_view payload) {
  char header[kHeaderBytes];
  std::memcpy(header, kMagic, 4);
  put_u64(header + 4, payload.size());
  put_u64(header + 12, fnv1a_64(payload));

  const auto write_all = [fd](const char* data, std::size_t n) {
    std::size_t sent = 0;
    while (sent < n) {
      const ssize_t w = ::write(fd, data + sent, n - sent);
      if (w < 0) {
        if (errno == EINTR) continue;
        throw_io("write", fd, errno);
      }
      sent += static_cast<std::size_t>(w);
    }
  };
  write_all(header, kHeaderBytes);
  write_all(payload.data(), payload.size());
}

FrameResult read_frame(int fd, const Deadline& deadline) {
  FrameResult result;
  char header[kHeaderBytes];
  result.status =
      read_exact(fd, header, kHeaderBytes, deadline, "frame header",
                 result.detail);
  if (result.status != FrameStatus::kOk) return result;

  if (std::memcmp(header, kMagic, 4) != 0) {
    result.status = FrameStatus::kCorrupt;
    result.detail = "bad frame magic";
    return result;
  }
  const std::uint64_t length = get_u64(header + 4);
  const std::uint64_t checksum = get_u64(header + 12);
  if (length > kMaxFramePayload) {
    std::ostringstream os;
    os << "implausible frame length " << length;
    result.status = FrameStatus::kCorrupt;
    result.detail = os.str();
    return result;
  }
  result.payload.resize(static_cast<std::size_t>(length));
  if (length > 0) {
    result.status = read_exact(fd, result.payload.data(),
                               result.payload.size(), deadline,
                               "frame payload", result.detail);
    if (result.status != FrameStatus::kOk) {
      result.payload.clear();
      return result;
    }
  }
  if (fnv1a_64(result.payload) != checksum) {
    result.payload.clear();
    result.status = FrameStatus::kCorrupt;
    result.detail = "frame checksum mismatch";
  }
  return result;
}

WorkerProcess spawn_worker(const WorkerMain& main) {
  LDLB_REQUIRE_MSG(main != nullptr, "spawn_worker needs a worker body");
  if (g_spawn_failures_for_test > 0) {
    --g_spawn_failures_for_test;
    throw IoError("ipc fork failed: injected spawn failure (test seam)",
                  "<fork>", EAGAIN);
  }
  ignore_sigpipe();

  int to_child[2] = {-1, -1};
  int from_child[2] = {-1, -1};
  if (::pipe(to_child) != 0) throw_io("pipe", -1, errno);
  if (::pipe(from_child) != 0) {
    const int err = errno;
    ::close(to_child[0]);
    ::close(to_child[1]);
    throw_io("pipe", -1, err);
  }

  const pid_t pid = ::fork();
  if (pid < 0) {
    const int err = errno;
    ::close(to_child[0]);
    ::close(to_child[1]);
    ::close(from_child[0]);
    ::close(from_child[1]);
    throw_io("fork", -1, err);
  }

  if (pid == 0) {
    // Child. The parent's pool threads do not exist here; every parallel_*
    // call must run inline from now on.
    ThreadPool::note_forked_child();
    ::close(to_child[1]);
    ::close(from_child[0]);
    int code = 125;
    try {
      code = main(to_child[0], from_child[1]);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "ldlb worker %d: %s\n",
                   static_cast<int>(::getpid()), e.what());
      // ldlb-lint: allow(catch-all): process boundary — an exception
      // escaping the worker body must become a nonzero _exit code for the
      // coordinator to classify, whatever its type; nothing outlives _exit.
    } catch (...) {
      std::fprintf(stderr, "ldlb worker %d: unknown exception\n",
                   static_cast<int>(::getpid()));
    }
    ::close(to_child[0]);
    ::close(from_child[1]);
    ::_exit(code);
  }

  // Parent.
  ::close(to_child[0]);
  ::close(from_child[1]);
  WorkerProcess worker;
  worker.pid = pid;
  worker.to_fd = to_child[1];
  worker.from_fd = from_child[0];
  return worker;
}

pid_t spawn_child(const std::function<int()>& main) {
  LDLB_REQUIRE_MSG(main != nullptr, "spawn_child needs a child body");
  if (g_spawn_failures_for_test > 0) {
    --g_spawn_failures_for_test;
    throw IoError("ipc fork failed: injected spawn failure (test seam)",
                  "<fork>", EAGAIN);
  }
  ignore_sigpipe();

  const pid_t pid = ::fork();
  if (pid < 0) throw_io("fork", -1, errno);
  if (pid == 0) {
    ThreadPool::note_forked_child();
    int code = 125;
    try {
      code = main();
    } catch (const std::exception& e) {
      std::fprintf(stderr, "ldlb child %d: %s\n",
                   static_cast<int>(::getpid()), e.what());
      // ldlb-lint: allow(catch-all): process boundary — an exception
      // escaping the child body must become a nonzero _exit code for the
      // parent to classify, whatever its type; nothing outlives _exit.
    } catch (...) {
      std::fprintf(stderr, "ldlb child %d: unknown exception\n",
                   static_cast<int>(::getpid()));
    }
    ::_exit(code);
  }
  return pid;
}

void close_worker_fds(WorkerProcess& worker) {
  if (worker.to_fd >= 0) ::close(worker.to_fd);
  if (worker.from_fd >= 0) ::close(worker.from_fd);
  worker.to_fd = -1;
  worker.from_fd = -1;
}

const char* to_string(ExitKind kind) {
  switch (kind) {
    case ExitKind::kRunning:
      return "running";
    case ExitKind::kExited:
      return "exited";
    case ExitKind::kSignaled:
      return "signaled";
  }
  return "unknown";
}

std::string ExitStatus::to_string() const {
  std::ostringstream os;
  switch (kind) {
    case ExitKind::kRunning:
      os << "running";
      break;
    case ExitKind::kExited:
      os << "exited(" << code << ")";
      break;
    case ExitKind::kSignaled: {
      const char* name = ::strsignal(sig);
      os << "signaled(" << (name != nullptr ? name : "?") << ")";
      break;
    }
  }
  return os.str();
}

ExitStatus poll_exit(pid_t pid) {
  ExitStatus status;
  int raw = 0;
  const pid_t r = ::waitpid(pid, &raw, WNOHANG);
  if (r == 0) return status;  // still running
  if (r < 0) {
    // ECHILD: already reaped elsewhere — report a clean synthetic exit so
    // double-reaps stay harmless.
    if (errno == ECHILD) {
      status.kind = ExitKind::kExited;
      return status;
    }
    throw_io("waitpid", -1, errno);
  }
  if (WIFEXITED(raw)) {
    status.kind = ExitKind::kExited;
    status.code = WEXITSTATUS(raw);
  } else if (WIFSIGNALED(raw)) {
    status.kind = ExitKind::kSignaled;
    status.sig = WTERMSIG(raw);
  }
  return status;
}

ExitStatus wait_exit(pid_t pid, const Deadline& deadline) {
  for (;;) {
    ExitStatus status = poll_exit(pid);
    if (status.kind != ExitKind::kRunning) return status;
    if (deadline.expired()) return status;  // kRunning: caller may kill
    // Sleep a tick without pulling in clock headers: poll with no fds.
    // A signal may cut the tick short (EINTR); the loop re-polls waitpid
    // either way, so no explicit retry is needed beyond re-entering.
    if (::poll(nullptr, 0, 2) < 0 && errno != EINTR) {
      throw_io("poll", -1, errno);
    }
  }
}

void kill_process(pid_t pid, int sig) {
  if (pid <= 0) return;  // never signal process groups by accident
  ::kill(pid, sig);      // failure (ESRCH) means it is already gone
}

void ignore_sigpipe() {
  struct sigaction action;
  std::memset(&action, 0, sizeof action);
  action.sa_handler = SIG_IGN;
  ::sigaction(SIGPIPE, &action, nullptr);
}

void sleep_seconds(double seconds, CancellationToken* cancel) {
  const Deadline deadline = Deadline::in(seconds < 0 ? 0 : seconds);
  while (!deadline.expired()) {
    if (cancel != nullptr) cancel->check();
    // With a token, wait in <=10ms slices so a cancel mid-backoff lands
    // within the latency budget; without one, sleep the rest in one poll.
    int timeout = poll_timeout_ms(deadline);
    if (cancel != nullptr && (timeout < 0 || timeout > 10)) timeout = 10;
    if (::poll(nullptr, 0, timeout) < 0 && errno != EINTR) {
      throw_io("poll", -1, errno);
    }
  }
  if (cancel != nullptr) cancel->check();
}

void set_spawn_failures_for_test(int n) { g_spawn_failures_for_test = n; }

}  // namespace ldlb::ipc
