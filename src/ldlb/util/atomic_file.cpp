#include "ldlb/util/atomic_file.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

#include "ldlb/util/error.hpp"

namespace ldlb {

namespace {

// ldlb-lint: allow(raw-sync): the process-wide injector pointer is swapped
// atomically so a fault plan can be (un)installed while the pool runs; the
// pointed-to plan keeps its own thread-safety contract.
std::atomic<FsFaultInjector*> g_fs_injector{nullptr};

[[noreturn]] void io_fail(const std::string& op, const std::string& path) {
  const int code = errno;
  std::ostringstream os;
  os << op << " failed for '" << path << "': " << std::strerror(code);
  throw IoError(os.str(), path, code);
}

// Splits "dir/file" into the directory part ("." when there is none).
std::string directory_of(const std::string& path) {
  const auto slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

// Makes the rename itself durable: without this, a crash after rename()
// can lose the directory entry update and resurrect the old file. The
// injector seam lets EnvFaultPlan fail exactly this fsync too.
void fsync_directory(const std::string& dir) {
  if (FsFaultInjector* inj = fs_fault_injector()) inj->before_dir_fsync(dir);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;  // best effort: some filesystems refuse dir opens
  if (::fsync(fd) != 0) {
    const int code = errno;
    ::close(fd);
    errno = code;
    io_fail("fsync(directory)", dir);
  }
  ::close(fd);
}

// Owns the temp file until the rename succeeds; any throw on the way —
// including one raised by the fault injector — closes and unlinks it.
struct TempFileGuard {
  int fd;
  std::string path;
  bool armed = true;

  ~TempFileGuard() {
    if (!armed) return;
    if (fd >= 0) ::close(fd);
    ::unlink(path.c_str());
  }
};

// Closes an fd on scope exit unless disarmed (fd set to -1).
struct FdGuard {
  int fd;
  ~FdGuard() {
    if (fd >= 0) ::close(fd);
  }
};

// The injector-aware write loop shared by write_file_atomic and
// append_file_durable: the injector may throw (EIO/ENOSPC) or cap the
// bytes accepted per call (a short write — the remainder retries,
// consulting the injector again).
void write_all(int fd, const std::string& path, const std::string& content,
               FsFaultInjector* inj) {
  const char* data = content.data();
  std::size_t remaining = content.size();
  while (remaining > 0) {
    std::size_t allow = remaining;
    if (inj) {
      allow = inj->before_write(path, remaining);
      if (allow == 0 || allow > remaining) allow = remaining;
    }
    const ssize_t written = ::write(fd, data, allow);
    if (written < 0) {
      if (errno == EINTR) continue;
      io_fail("write", path);
    }
    data += written;
    remaining -= static_cast<std::size_t>(written);
  }
}

}  // namespace

void set_fs_fault_injector(FsFaultInjector* injector) {
  g_fs_injector.store(injector, std::memory_order_release);
}

FsFaultInjector* fs_fault_injector() {
  return g_fs_injector.load(std::memory_order_acquire);
}

void write_file_atomic(const std::string& path, const std::string& content) {
  // mkstemp wants a mutable template in the destination directory, so the
  // final rename() never crosses a filesystem boundary.
  std::vector<char> tmpl(path.begin(), path.end());
  const char suffix[] = ".tmp.XXXXXX";
  tmpl.insert(tmpl.end(), suffix, suffix + sizeof(suffix));  // keeps the NUL

  const int fd = ::mkstemp(tmpl.data());
  if (fd < 0) io_fail("mkstemp", path);
  TempFileGuard tmp{fd, std::string{tmpl.data()}};
  FsFaultInjector* inj = fs_fault_injector();

  write_all(fd, tmp.path, content, inj);
  if (inj) inj->before_fsync(tmp.path);
  if (::fsync(fd) != 0) io_fail("fsync", tmp.path);
  if (::close(fd) != 0) {
    tmp.fd = -1;  // already closed; the guard must not close it again
    io_fail("close", tmp.path);
  }
  tmp.fd = -1;
  if (inj) inj->before_rename(tmp.path, path);
  if (::rename(tmp.path.c_str(), path.c_str()) != 0) io_fail("rename", path);
  tmp.armed = false;  // the temp name is gone; nothing left to clean up
  // Make the rename itself durable (see fsync_directory).
  fsync_directory(directory_of(path));
}

void append_file_durable(const std::string& path, const std::string& content,
                         bool sync_directory) {
  FsFaultInjector* inj = fs_fault_injector();
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) io_fail("open(append)", path);
  FdGuard guard{fd};
  write_all(fd, path, content, inj);
  if (inj) inj->before_fsync(path);
  if (::fsync(fd) != 0) io_fail("fsync", path);
  if (::close(fd) != 0) {
    guard.fd = -1;
    io_fail("close", path);
  }
  guard.fd = -1;
  // Make a freshly created log file's dirent durable, mirroring the
  // post-rename directory fsync of write_file_atomic.
  if (sync_directory) fsync_directory(directory_of(path));
}

void truncate_file(const std::string& path, std::uint64_t size) {
  FsFaultInjector* inj = fs_fault_injector();
  if (inj) inj->before_truncate(path, size);
  const int fd = ::open(path.c_str(), O_WRONLY);
  if (fd < 0) io_fail("open(truncate)", path);
  FdGuard guard{fd};
  if (::ftruncate(fd, static_cast<off_t>(size)) != 0) {
    io_fail("ftruncate", path);
  }
  if (::fsync(fd) != 0) io_fail("fsync", path);
  if (::close(fd) != 0) {
    guard.fd = -1;
    io_fail("close", path);
  }
  guard.fd = -1;
}

std::optional<std::uint64_t> file_size(const std::string& path) {
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0) {
    if (errno == ENOENT) return std::nullopt;
    io_fail("stat", path);
  }
  return static_cast<std::uint64_t>(st.st_size);
}

std::string read_file(const std::string& path) {
  if (FsFaultInjector* inj = fs_fault_injector()) inj->before_read(path);
  std::ifstream in{path, std::ios::binary};
  if (!in) io_fail("open", path);
  std::ostringstream os;
  os << in.rdbuf();
  if (in.bad()) io_fail("read", path);
  return os.str();
}

}  // namespace ldlb
