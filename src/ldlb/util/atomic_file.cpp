#include "ldlb/util/atomic_file.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

#include "ldlb/util/error.hpp"

namespace ldlb {

namespace {

// ldlb-lint: allow(raw-sync): the process-wide injector pointer is swapped
// atomically so a fault plan can be (un)installed while the pool runs; the
// pointed-to plan keeps its own thread-safety contract.
std::atomic<FsFaultInjector*> g_fs_injector{nullptr};

[[noreturn]] void io_fail(const std::string& op, const std::string& path) {
  const int code = errno;
  std::ostringstream os;
  os << op << " failed for '" << path << "': " << std::strerror(code);
  throw IoError(os.str(), path, code);
}

// Splits "dir/file" into the directory part ("." when there is none).
std::string directory_of(const std::string& path) {
  const auto slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

// Makes the rename itself durable: without this, a crash after rename()
// can lose the directory entry update and resurrect the old file. The
// injector seam lets EnvFaultPlan fail exactly this fsync too.
void fsync_directory(const std::string& dir) {
  if (FsFaultInjector* inj = fs_fault_injector()) inj->before_dir_fsync(dir);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;  // best effort: some filesystems refuse dir opens
  if (::fsync(fd) != 0) {
    const int code = errno;
    ::close(fd);
    errno = code;
    io_fail("fsync(directory)", dir);
  }
  ::close(fd);
}

// Owns the temp file until the rename succeeds; any throw on the way —
// including one raised by the fault injector — closes and unlinks it.
struct TempFileGuard {
  int fd;
  std::string path;
  bool armed = true;

  ~TempFileGuard() {
    if (!armed) return;
    if (fd >= 0) ::close(fd);
    ::unlink(path.c_str());
  }
};

}  // namespace

void set_fs_fault_injector(FsFaultInjector* injector) {
  g_fs_injector.store(injector, std::memory_order_release);
}

FsFaultInjector* fs_fault_injector() {
  return g_fs_injector.load(std::memory_order_acquire);
}

void write_file_atomic(const std::string& path, const std::string& content) {
  // mkstemp wants a mutable template in the destination directory, so the
  // final rename() never crosses a filesystem boundary.
  std::vector<char> tmpl(path.begin(), path.end());
  const char suffix[] = ".tmp.XXXXXX";
  tmpl.insert(tmpl.end(), suffix, suffix + sizeof(suffix));  // keeps the NUL

  const int fd = ::mkstemp(tmpl.data());
  if (fd < 0) io_fail("mkstemp", path);
  TempFileGuard tmp{fd, std::string{tmpl.data()}};
  FsFaultInjector* inj = fs_fault_injector();

  const char* data = content.data();
  std::size_t remaining = content.size();
  while (remaining > 0) {
    std::size_t allow = remaining;
    if (inj) {
      // May throw IoError (EIO / ENOSPC) or cap the bytes accepted in this
      // call to model a short write; the remainder retries below.
      allow = inj->before_write(tmp.path, remaining);
      if (allow == 0 || allow > remaining) allow = remaining;
    }
    const ssize_t written = ::write(fd, data, allow);
    if (written < 0) {
      if (errno == EINTR) continue;
      io_fail("write", tmp.path);
    }
    data += written;
    remaining -= static_cast<std::size_t>(written);
  }
  if (inj) inj->before_fsync(tmp.path);
  if (::fsync(fd) != 0) io_fail("fsync", tmp.path);
  if (::close(fd) != 0) {
    tmp.fd = -1;  // already closed; the guard must not close it again
    io_fail("close", tmp.path);
  }
  tmp.fd = -1;
  if (inj) inj->before_rename(tmp.path, path);
  if (::rename(tmp.path.c_str(), path.c_str()) != 0) io_fail("rename", path);
  tmp.armed = false;  // the temp name is gone; nothing left to clean up
  // Make the rename itself durable (see fsync_directory).
  fsync_directory(directory_of(path));
}

std::string read_file(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) io_fail("open", path);
  std::ostringstream os;
  os << in.rdbuf();
  if (in.bad()) io_fail("read", path);
  return os.str();
}

}  // namespace ldlb
