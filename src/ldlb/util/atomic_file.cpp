#include "ldlb/util/atomic_file.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

#include "ldlb/util/error.hpp"

namespace ldlb {

namespace {

[[noreturn]] void io_fail(const std::string& op, const std::string& path) {
  std::ostringstream os;
  os << op << " failed for '" << path << "': " << std::strerror(errno);
  throw IoError(os.str(), path);
}

// Splits "dir/file" into the directory part ("." when there is none).
std::string directory_of(const std::string& path) {
  const auto slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

void fsync_directory(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;  // best effort: some filesystems refuse dir opens
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

void write_file_atomic(const std::string& path, const std::string& content) {
  // mkstemp wants a mutable template in the destination directory, so the
  // final rename() never crosses a filesystem boundary.
  std::vector<char> tmpl(path.begin(), path.end());
  const char suffix[] = ".tmp.XXXXXX";
  tmpl.insert(tmpl.end(), suffix, suffix + sizeof(suffix));  // keeps the NUL

  const int fd = ::mkstemp(tmpl.data());
  if (fd < 0) io_fail("mkstemp", path);
  const std::string tmp_path{tmpl.data()};

  const char* data = content.data();
  std::size_t remaining = content.size();
  while (remaining > 0) {
    const ssize_t written = ::write(fd, data, remaining);
    if (written < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp_path.c_str());
      io_fail("write", tmp_path);
    }
    data += written;
    remaining -= static_cast<std::size_t>(written);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp_path.c_str());
    io_fail("fsync", tmp_path);
  }
  if (::close(fd) != 0) {
    ::unlink(tmp_path.c_str());
    io_fail("close", tmp_path);
  }
  if (::rename(tmp_path.c_str(), path.c_str()) != 0) {
    ::unlink(tmp_path.c_str());
    io_fail("rename", path);
  }
  // Make the rename itself durable.
  fsync_directory(directory_of(path));
}

std::string read_file(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) io_fail("open", path);
  std::ostringstream os;
  os << in.rdbuf();
  if (in.bad()) io_fail("read", path);
  return os.str();
}

}  // namespace ldlb
