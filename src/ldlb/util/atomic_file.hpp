// Crash-safe file replacement.
//
// Long adversary runs checkpoint their partial certificate chains to disk;
// a crash in the middle of a plain `ofstream` write would leave a torn file
// and lose the whole run. `write_file_atomic` follows the classic POSIX
// recipe instead — write to a unique temp file in the same directory,
// fsync it, rename() it over the destination, fsync the directory — so at
// every instant the destination path holds either the complete old content
// or the complete new content, never a mixture.
//
// All certificate-to-file paths in the repo (the snapshot store,
// `write_certificate_file`, the certificate tool) go through this helper.
#pragma once

#include <string>

namespace ldlb {

/// Atomically replaces the contents of `path` with `content`. Throws
/// IoError if any step fails; on failure the destination is untouched and
/// the temp file is cleaned up on a best-effort basis.
void write_file_atomic(const std::string& path, const std::string& content);

/// Reads a whole file into a string. Throws IoError when the file cannot
/// be opened or read.
[[nodiscard]] std::string read_file(const std::string& path);

}  // namespace ldlb
