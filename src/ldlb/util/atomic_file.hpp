// Crash-safe file replacement.
//
// Long adversary runs checkpoint their partial certificate chains to disk;
// a crash in the middle of a plain `ofstream` write would leave a torn file
// and lose the whole run. `write_file_atomic` follows the classic POSIX
// recipe instead — write to a unique temp file in the same directory,
// fsync it, rename() it over the destination, fsync the parent directory —
// so at every instant the destination path holds either the complete old
// content or the complete new content, never a mixture. The final directory
// fsync matters: rename() only updates the directory entry, and without
// flushing the directory a crash can lose the rename itself, resurrecting
// the old file.
//
// All certificate-to-file paths in the repo (the snapshot store,
// `write_certificate_file`, the certificate tool) go through this helper.
// The append-only certificate log (recover/cert_log.hpp) has a different
// durability shape — records accrete, they are not replaced — so this file
// also provides its two primitives: `append_file_durable` (append + fsync,
// where a crash mid-call leaves a *torn tail* the log's open path detects
// and truncates away) and `truncate_file` (the torn-tail repair itself).
//
// Fault-injection seam: every individual filesystem operation
// (write / fsync of the temp file / rename / fsync of the parent directory,
// plus the append / truncate / read paths of the certificate log)
// first consults the process-wide FsFaultInjector, if one is installed.
// fault/env_fault.hpp's EnvFaultPlan implements the interface to fail the
// nth such operation with EIO / ENOSPC or to force a short write, which is
// how the env-fault and chaos tests prove that a checkpointed run survives
// a hostile filesystem. With no injector installed, each operation pays one
// relaxed atomic load.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

namespace ldlb {

/// Interception points for the filesystem operations of write_file_atomic.
/// Every hook may throw IoError to model that operation failing; the
/// default implementations are transparent no-ops.
class FsFaultInjector {
 public:
  virtual ~FsFaultInjector() = default;

  /// Called before writing `size` bytes to the temp file. Return the number
  /// of bytes the "filesystem" will accept in this call — a value < size
  /// models a short write (the remainder is retried, consulting the
  /// injector again). Returning 0 or more than `size` means `size`.
  virtual std::size_t before_write(const std::string& /*path*/,
                                   std::size_t size) {
    return size;
  }

  /// Called before fsync of the temp file's data.
  virtual void before_fsync(const std::string& /*path*/) {}

  /// Called before the rename over the destination.
  virtual void before_rename(const std::string& /*from*/,
                             const std::string& /*to*/) {}

  /// Called before the durability fsync of the destination's parent
  /// directory (the rename is already visible when this fires).
  virtual void before_dir_fsync(const std::string& /*dir*/) {}

  /// Called before truncate_file shrinks `path` to `size` bytes (the
  /// certificate log's torn-tail repair).
  virtual void before_truncate(const std::string& /*path*/,
                               std::uint64_t /*size*/) {}

  /// Called before a read batch: once per read_file call and once per
  /// record the certificate-log scanner consumes, so a plan can fail the
  /// nth *record* of a streaming validation, not just the nth file.
  virtual void before_read(const std::string& /*path*/) {}
};

/// Installs `injector` as the process-wide filesystem fault injector for
/// every subsequent write_file_atomic call; nullptr uninstalls. Not owned.
/// Test machinery — swap only while no write is in flight.
void set_fs_fault_injector(FsFaultInjector* injector);

/// The currently installed injector (nullptr when none).
[[nodiscard]] FsFaultInjector* fs_fault_injector();

/// Atomically replaces the contents of `path` with `content`. Throws
/// IoError if any step fails; on failure before the rename the destination
/// is untouched and the temp file is cleaned up on a best-effort basis. An
/// IoError from the final directory fsync means the new content is in place
/// but its durability is unconfirmed — callers that must be crash-safe
/// should treat it as a failed checkpoint and re-save.
void write_file_atomic(const std::string& path, const std::string& content);

/// Appends `content` to `path` (creating an empty file first when absent)
/// and fsyncs it — the durable-append primitive of the certificate log.
/// Unlike write_file_atomic there is deliberately no temp-and-rename: an
/// append that crashes (or is failed by the injector) part-way leaves the
/// previous bytes intact plus a *torn tail*, exactly the damage class the
/// log's open path classifies as kTornTail and truncates away. When
/// `sync_directory` is set the parent directory is fsynced too (pass it for
/// the append that creates the file, so the dirent survives a crash).
/// Throws IoError.
void append_file_durable(const std::string& path, const std::string& content,
                         bool sync_directory = false);

/// Truncates `path` to exactly `size` bytes and fsyncs (the certificate
/// log's torn-tail repair). Throws IoError.
void truncate_file(const std::string& path, std::uint64_t size);

/// Size of `path` in bytes; nullopt when it does not exist.
[[nodiscard]] std::optional<std::uint64_t> file_size(const std::string& path);

/// Reads a whole file into a string. Throws IoError when the file cannot
/// be opened or read.
[[nodiscard]] std::string read_file(const std::string& path);

}  // namespace ldlb
