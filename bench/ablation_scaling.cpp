// Ablation — the two §1.2 regimes made visible side by side.
//
// The paper contrasts: constant-factor approximations of *maximum-weight*
// FMs cost Θ(log Δ) rounds (Kuhn et al. [16–18]), while *maximality* costs
// Θ(Δ) (Theorem 1). We run the scaling algorithm (log Δ phases) against
// the maximality algorithms (Θ(Δ) colour sweeps) and report, per Δ:
//
//   * rounds spent and approximation ratio of the scaling phases alone;
//   * extra rounds the cleanup needs to reach maximality;
//   * rounds and ratio of the Θ(Δ) maximal algorithms;
//
// plus the Ω(log Δ)-flavoured observation: the number of scaling phases
// needed to reach half the optimum grows like log2 Δ — a constant-factor
// guarantee genuinely needs rounds growing with log Δ.
#include <benchmark/benchmark.h>

#include <cmath>

#include "bench_util.hpp"
#include "ldlb/graph/edge_coloring.hpp"
#include "ldlb/graph/generators.hpp"
#include "ldlb/local/simulator.hpp"
#include "ldlb/matching/max_fractional.hpp"
#include "ldlb/matching/scaling_packing.hpp"
#include "ldlb/matching/seq_color_packing.hpp"
#include "ldlb/util/rng.hpp"

namespace {

using namespace ldlb;

double ratio(const Rational& got, const Rational& opt) {
  return opt.is_zero() ? 1.0 : got.to_double() / opt.to_double();
}

void report() {
  bench::section("Ablation: log-Δ scaling vs Θ(Δ) maximality");
  bench::Table table{{"delta", "scal_rounds", "scal_ratio", "cleanup_extra",
                      "seq_rounds", "seq_ratio"}, 14};
  table.print_header();
  Rng rng{131};
  for (int delta : {4, 8, 16, 32}) {
    Multigraph g = make_random_regular(96, delta, rng);
    Rational opt = max_fractional_weight(g);

    ScalingRun scal = scaling_packing(g, /*cleanup=*/false);
    ScalingRun full = scaling_packing(g, /*cleanup=*/true);

    Multigraph colored = greedy_edge_coloring(g);
    int k = colors_used(colored);
    SeqColorPacking seq{k};
    RunResult seq_run = run_ec(colored, seq, k + 1);

    table.print_row(delta, scal.scaling_rounds,
                    ratio(scal.matching.total_weight(), opt),
                    full.cleanup_rounds, seq_run.rounds,
                    ratio(seq_run.matching.total_weight(), opt));
  }
  std::cout << "\nScaling reaches a good fraction of the optimum in O(log Δ)\n"
               "rounds; the Θ(Δ) sweep is what *maximality* costs — the\n"
               "regime split of §1.2 that Theorem 1 proves inherent.\n";

  bench::section("Phases until half the optimum: grows like log2 Δ");
  bench::Table t2{{"delta", "phases_to_1/2", "log2(delta)"}};
  t2.print_header();
  for (int delta : {4, 16, 64, 256}) {
    NodeId n = std::max<NodeId>(512, 2 * delta);
    Multigraph g = make_random_regular(n, delta, rng);
    Rational opt = max_fractional_weight(g);
    // Replay the scaling schedule phase by phase and record when the
    // accumulated weight first reaches opt/2. An edge participates in the
    // increment-2^{-k} phase iff both endpoints can absorb a full round of
    // increments (residual >= Δ * 2^{-k}), so nothing at all happens until
    // 2^{-k} <= 1/Δ — the log2 Δ wall the Kuhn et al. bound formalises.
    FractionalMatching y(g.edge_count());
    std::vector<Rational> residual(static_cast<std::size_t>(g.node_count()),
                                   Rational(1));
    Rational inc{1, 2};
    int phases = 0;
    while (y.total_weight() * Rational(2) < opt && phases < 64) {
      ++phases;
      const std::vector<Rational> snap = residual;
      for (EdgeId e = 0; e < g.edge_count(); ++e) {
        const auto& ed = g.edge(e);
        Rational need = inc * Rational(delta);
        if (snap[static_cast<std::size_t>(ed.u)] >= need &&
            snap[static_cast<std::size_t>(ed.v)] >= need) {
          y.add_weight(e, inc);
          residual[static_cast<std::size_t>(ed.u)] -= inc;
          residual[static_cast<std::size_t>(ed.v)] -= inc;
        }
      }
      inc *= Rational(1, 2);
    }
    double log2d = std::log2(static_cast<double>(delta));
    t2.print_row(delta, phases, log2d);
  }
  std::cout << "\nReaching any constant fraction of the optimum needs a\n"
               "number of phases growing with log Δ — the Kuhn et al.\n"
               "Ω(log Δ) phenomenon from §1.2.\n";
}

void BM_ScalingPhases(benchmark::State& state) {
  Rng rng{132};
  Multigraph g = make_random_regular(96, static_cast<int>(state.range(0)),
                                     rng);
  for (auto _ : state) {
    ScalingRun run = scaling_packing(g, false);
    benchmark::DoNotOptimize(run.scaling_rounds);
  }
}
BENCHMARK(BM_ScalingPhases)->Arg(4)->Arg(8)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMicrosecond);

void BM_ScalingWithCleanup(benchmark::State& state) {
  Rng rng{133};
  Multigraph g = make_random_regular(96, static_cast<int>(state.range(0)),
                                     rng);
  for (auto _ : state) {
    ScalingRun run = scaling_packing(g, true);
    benchmark::DoNotOptimize(run.cleanup_rounds);
  }
}
BENCHMARK(BM_ScalingWithCleanup)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

LDLB_BENCH_MAIN(report)
