// Appendix B — derandomising local algorithms.
//
// Reproduction: (a) the failure-amplification curve 1 − (1 − p)^q on
// disjoint unions that powers Lemma 10's averaging argument — empirical vs
// analytic; (b) the Lemma 10 search itself: how many candidate id sets and
// tape samples until an assignment correct on *all* graphs of the id set
// is found, as a function of the failure probability knob.
#include <benchmark/benchmark.h>

#include <cmath>

#include "bench_util.hpp"
#include "ldlb/core/derandomize.hpp"
#include "ldlb/graph/generators.hpp"

namespace {

using namespace ldlb;

void report() {
  bench::section("Appendix B: failure amplification on disjoint unions");
  bench::Table table{{"copies_q", "empirical", "analytic 1-(1-p)^q"}};
  table.print_header();
  RandomPriorityPacking a{4, 3};  // p = 1/8 on a single edge
  Multigraph edge(2);
  edge.add_edge(0, 1);
  Rng rng{91};
  for (int q : {1, 2, 4, 8, 16, 32}) {
    double emp = measure_amplification(a, edge, q, 300, rng);
    double ana = 1 - std::pow(1 - 1.0 / 8, q);
    table.print_row(q, emp, ana);
  }
  std::cout << "\nAs q grows the union fails almost surely — the\n"
               "contradiction that forces Lemma 10's good id set to exist.\n";

  bench::section("Lemma 10 search: samples until a good (S_n, rho_n)");
  bench::Table t2{{"priority_bits", "fail_p(edge)", "sets", "samples",
                   "found"}};
  t2.print_header();
  for (int bits : {2, 4, 8, 16}) {
    RandomPriorityPacking alg{6, bits};
    Rng search_rng{92};
    auto result = find_good_tape_assignment(alg, 4, search_rng,
                                            /*max_sets=*/8,
                                            /*samples_per_set=*/40);
    double p = 1.0 / (1 << bits);
    if (result) {
      t2.print_row(bits, p, result->sets_tried, result->samples_tried, "yes");
    } else {
      t2.print_row(bits, p, 8, 8 * 40, "no");
    }
  }
  std::cout << "\nMore random bits => smaller failure probability => the\n"
               "search succeeds faster (collision-free assignments abound).\n";
}

void BM_Lemma10Search(benchmark::State& state) {
  RandomPriorityPacking alg{6, static_cast<int>(state.range(0))};
  for (auto _ : state) {
    Rng rng{93};
    auto result = find_good_tape_assignment(alg, 4, rng, 8, 40);
    benchmark::DoNotOptimize(result.has_value());
  }
}
BENCHMARK(BM_Lemma10Search)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond);

void BM_Amplification(benchmark::State& state) {
  RandomPriorityPacking a{4, 3};
  Multigraph edge(2);
  edge.add_edge(0, 1);
  Rng rng{94};
  for (auto _ : state) {
    benchmark::DoNotOptimize(measure_amplification(
        a, edge, static_cast<int>(state.range(0)), 50, rng));
  }
}
BENCHMARK(BM_Amplification)->Arg(1)->Arg(8)->Arg(32)
    ->Unit(benchmark::kMillisecond);

}  // namespace

LDLB_BENCH_MAIN(report)
