// Figure 2 — the equivalence of the two PO-graph definitions: port
// numberings (PO1) and properly coloured digraphs (PO2).
//
// Reproduction: round-trip conversions on growing random PO graphs, with
// validation (properness of the pair colouring, validity of the derived
// numbering, preservation of out-port order) on every instance.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "ldlb/graph/generators.hpp"
#include "ldlb/graph/port_numbering.hpp"
#include "ldlb/util/rng.hpp"

namespace {

using namespace ldlb;

void report() {
  bench::section("Figure 2: PO1 (ports) <-> PO2 (coloured digraph)");
  bench::Table table{{"nodes", "arcs", "colours_in", "pair_colours",
                      "roundtrip_ok"}};
  table.print_header();
  Rng rng{11};
  for (NodeId n : {8, 32, 128, 512}) {
    Digraph g = make_random_po_graph(n, 4.0 / n, rng);
    PortNumbering pn = ports_from_po_coloring(g);
    Digraph paired = po_coloring_from_ports(g, pn);
    PortNumbering pn2 = ports_from_po_coloring(paired);
    bool ok = pn.is_valid_for(g) && paired.has_proper_po_coloring() &&
              pn2.is_valid_for(paired);
    table.print_row(n, g.arc_count(), g.color_count(), paired.color_count(),
                    ok ? "yes" : "NO");
  }
}

void BM_PortsFromColoring(benchmark::State& state) {
  Rng rng{12};
  Digraph g = make_random_po_graph(static_cast<NodeId>(state.range(0)),
                                   8.0 / static_cast<double>(state.range(0)),
                                   rng);
  for (auto _ : state) {
    PortNumbering pn = ports_from_po_coloring(g);
    benchmark::DoNotOptimize(pn.ports.size());
  }
}
BENCHMARK(BM_PortsFromColoring)->Arg(100)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMicrosecond);

void BM_ColoringFromPorts(benchmark::State& state) {
  Rng rng{13};
  Digraph g = make_random_po_graph(static_cast<NodeId>(state.range(0)),
                                   8.0 / static_cast<double>(state.range(0)),
                                   rng);
  PortNumbering pn = canonical_ports(g);
  for (auto _ : state) {
    Digraph c = po_coloring_from_ports(g, pn);
    benchmark::DoNotOptimize(c.arc_count());
  }
}
BENCHMARK(BM_ColoringFromPorts)->Arg(100)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

LDLB_BENCH_MAIN(report)
