// Figure 10 / Appendix A — the homogeneous order ⟦x→y⟧ on the infinite
// coloured tree.
//
// Reproduction: a worked example in the style of Figure 10 (path functional
// evaluated edge-term by node-term), the order-theoretic properties
// verified on random samples, and comparison throughput as a function of
// tree distance.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "ldlb/order/tree_order.hpp"
#include "ldlb/util/rng.hpp"

namespace {

using namespace ldlb;
using order::bracket;
using order::concat;
using order::Letter;
using order::step;
using order::TreeCoord;
using order::tree_less;

TreeCoord random_coord(Rng& rng, int d, int len) {
  TreeCoord out;
  for (int i = 0; i < len; ++i) {
    Letter l = static_cast<Letter>(rng.next_in(1, d));
    if (rng.next_bool()) l = -l;
    out = step(std::move(out), l);
  }
  return out;
}

void report() {
  bench::section("Figure 10: the bracket ⟦x→y⟧ (worked example)");
  // u at coordinate (+1), v at (+2.-1): the path u -> origin -> +2 -> v.
  TreeCoord u{1};
  TreeCoord v{2, -1};
  std::cout << "u = " << order::to_string(u) << ", v = " << order::to_string(v)
            << "\n";
  std::cout << "[u->v] = " << bracket(u, v) << ", [v->u] = " << bracket(v, u)
            << "  => " << (tree_less(u, v) ? "u < v" : "v < u") << "\n";

  bench::section("Lemma 4 properties on random samples (d = 3, len <= 12)");
  Rng rng{61};
  int total = 0, odd = 0, antisym = 0, homog = 0;
  for (int i = 0; i < 3000; ++i) {
    TreeCoord x = random_coord(rng, 3, static_cast<int>(rng.next_below(13)));
    TreeCoord y = random_coord(rng, 3, static_cast<int>(rng.next_below(13)));
    if (x == y) continue;
    ++total;
    auto b = bracket(x, y);
    if (b % 2 != 0) ++odd;
    if (b == -bracket(y, x)) ++antisym;
    TreeCoord z = random_coord(rng, 3, 6);
    if (b == bracket(concat(z, x), concat(z, y))) ++homog;
  }
  std::cout << "samples: " << total << ", odd: " << odd
            << ", antisymmetric: " << antisym
            << ", translation-invariant: " << homog << "\n";
  std::cout << (odd == total && antisym == total && homog == total
                    ? "all properties hold\n"
                    : "PROPERTY VIOLATION\n");
}

void BM_BracketByDistance(benchmark::State& state) {
  Rng rng{62};
  const int len = static_cast<int>(state.range(0));
  TreeCoord x = random_coord(rng, 4, len);
  TreeCoord y = random_coord(rng, 4, len);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bracket(x, y));
  }
  state.counters["distance"] = static_cast<double>(
      order::path_steps(x, y).size());
}
BENCHMARK(BM_BracketByDistance)->Arg(8)->Arg(64)->Arg(512)->Arg(4096)
    ->Unit(benchmark::kNanosecond);

void BM_SortViewByOrder(benchmark::State& state) {
  // Sorting n random tree nodes with tree_less — the inner loop of
  // canonical_ranks.
  Rng rng{63};
  std::vector<TreeCoord> coords;
  for (int i = 0; i < state.range(0); ++i) {
    coords.push_back(random_coord(rng, 3, 10));
  }
  for (auto _ : state) {
    auto copy = coords;
    std::sort(copy.begin(), copy.end(),
              [](const TreeCoord& a, const TreeCoord& b) {
                return a != b && tree_less(a, b);
              });
    benchmark::DoNotOptimize(copy.size());
  }
}
BENCHMARK(BM_SortViewByOrder)->Arg(64)->Arg(512)->Arg(4096)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

LDLB_BENCH_MAIN(report)
