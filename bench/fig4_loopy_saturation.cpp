// Figure 4 / Lemma 2 — on a loopy EC-graph, any correct anonymous algorithm
// must saturate every node.
//
// Reproduction: (a) the constructive side of Figure 4: given an algorithm
// that leaves a node v unsaturated on a loopy G, build the simple lift H in
// which two *adjacent* copies v1, v2 of v are both unsaturated — the edge
// {v1, v2} then violates maximality, caught by the checker; (b) confirm the
// correct algorithms do saturate everything on loopy families.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "ldlb/cover/lift.hpp"
#include "ldlb/cover/loopiness.hpp"
#include "ldlb/graph/generators.hpp"
#include "ldlb/local/simulator.hpp"
#include "ldlb/matching/checker.hpp"
#include "ldlb/matching/seq_color_packing.hpp"
#include "ldlb/util/rng.hpp"

namespace {

using namespace ldlb;

// A deliberately broken anonymous algorithm: it zeroes every loop, so loopy
// single-node graphs end up unsaturated (yet its outputs are consistent).
class LoopBlind : public EcAlgorithm {
 public:
  class Node : public EcNodeState {
   public:
    explicit Node(std::vector<Color> colors) : colors_(std::move(colors)) {}
    std::map<Color, Message> send(int) override { return {}; }
    void receive(int, const std::map<Color, Message>&) override {
      done_ = true;
    }
    [[nodiscard]] bool halted() const override { return done_; }
    [[nodiscard]] std::map<Color, Rational> output() const override {
      std::map<Color, Rational> out;
      for (Color c : colors_) out[c] = Rational(0);
      return out;
    }

   private:
    std::vector<Color> colors_;
    bool done_ = false;
  };
  std::unique_ptr<EcNodeState> make_node(const EcNodeContext& ctx) override {
    return std::make_unique<Node>(ctx.incident_colors);
  }
  [[nodiscard]] std::string name() const override { return "LoopBlind"; }
};

void report() {
  bench::section("Figure 4 / Lemma 2: loopiness forces saturation");

  // (a) The broken algorithm on the loopy G_0 and its simple lift.
  Multigraph g = make_loop_star(3);
  LoopBlind broken;
  RunResult on_g = run_ec(g, broken, 4);
  std::cout << "Broken algorithm on loopy G (1 node, 3 loops): node sum = "
            << on_g.matching.node_sum(g, 0) << " (unsaturated)\n";
  Lift lifted = involution_lift(g, 6);  // simple graph, 6 copies of v
  RunResult on_h = run_ec(lifted.graph, broken, 4);
  auto check = check_maximal(lifted.graph, on_h.matching);
  std::cout << "Same algorithm on the simple lift H: checker says: "
            << (check.ok ? "maximal (?!)" : check.reason) << "\n";
  std::cout << "-> as in Figure 4, adjacent unsaturated copies v1, v2 "
               "witness the failure.\n";

  // (b) Correct algorithm fully saturates loopy families.
  bench::section("Correct algorithm saturates loopy graphs (Lemma 2)");
  bench::Table table{{"nodes", "degree", "loopiness", "fully_saturated"}};
  table.print_header();
  Rng rng{31};
  for (auto [n, d] : {std::pair{4, 4}, {8, 6}, {16, 8}, {32, 10}}) {
    Multigraph lg = make_loopy_tree(n, d, rng);
    SeqColorPacking alg{d};
    RunResult r = run_ec(lg, alg, d + 1);
    table.print_row(n, d, loopiness(lg),
                    check_fully_saturated(lg, r.matching).ok ? "yes" : "NO");
  }
}

void BM_InvolutionLift(benchmark::State& state) {
  Rng rng{32};
  Multigraph g = make_loopy_tree(static_cast<NodeId>(state.range(0)), 6, rng);
  for (auto _ : state) {
    Lift lifted = involution_lift(g, 12);
    benchmark::DoNotOptimize(lifted.graph.node_count());
  }
}
BENCHMARK(BM_InvolutionLift)->Arg(8)->Arg(64)->Arg(512)
    ->Unit(benchmark::kMicrosecond);

void BM_SaturationCheck(benchmark::State& state) {
  Rng rng{33};
  Multigraph g = make_loopy_tree(static_cast<NodeId>(state.range(0)), 6, rng);
  SeqColorPacking alg{6};
  RunResult r = run_ec(g, alg, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(check_fully_saturated(g, r.matching).ok);
  }
}
BENCHMARK(BM_SaturationCheck)->Arg(64)->Arg(512)->Arg(4096)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

LDLB_BENCH_MAIN(report)
