// §1.4 / §3.1 — the LOCAL model's unbounded messages, measured.
//
// Every t-round LOCAL algorithm is equivalent to "gather τ_t, then decide"
// (eq. (1)); the price is bandwidth. We run the colour-sweep packing in
// both forms — direct message passing vs full-information gathering — and
// report rounds (equal), outputs (identical), and message bytes (flat vs
// exponential in the radius). This is why lower bounds in LOCAL are so
// strong: they hold even against algorithms using these enormous messages.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "ldlb/graph/edge_coloring.hpp"
#include "ldlb/graph/generators.hpp"
#include "ldlb/local/full_info.hpp"
#include "ldlb/local/simulator.hpp"
#include "ldlb/matching/seq_color_packing.hpp"
#include "ldlb/util/rng.hpp"

namespace {

using namespace ldlb;

void report() {
  bench::section("Full information vs direct messages (same outputs)");
  bench::Table table{{"delta", "rounds", "direct_bytes", "gather_bytes",
                      "ratio"}};
  table.print_header();
  Rng rng{191};
  for (int delta : {3, 4, 5, 6}) {
    Multigraph g = make_loopy_tree(8, delta, rng);
    int k = delta;  // loopy trees use colours 0..delta-1
    SeqColorPacking direct{k};
    SweepViewFunction fn{k};
    FullInfoEc gather{fn};
    RunResult rd = run_ec(g, direct, k + 1);
    RunResult rg = run_ec(g, gather, k + 2);
    LDLB_ENSURE(rd.matching == rg.matching);
    table.print_row(delta, rd.rounds, rd.message_bytes, rg.message_bytes,
                    static_cast<double>(rg.message_bytes) /
                        static_cast<double>(std::max(rd.message_bytes, 1ll)));
  }
  std::cout << "\nIdentical outputs; the gathered views cost bytes growing\n"
               "like Δ^t while the direct algorithm sends O(1)-size\n"
               "residuals — eq. (1)'s equivalence and its price.\n";
}

void BM_DirectSweep(benchmark::State& state) {
  Rng rng{192};
  const int delta = static_cast<int>(state.range(0));
  Multigraph g = make_loopy_tree(8, delta, rng);
  SeqColorPacking alg{delta};
  for (auto _ : state) {
    RunResult r = run_ec(g, alg, delta + 1);
    benchmark::DoNotOptimize(r.message_bytes);
  }
}
BENCHMARK(BM_DirectSweep)->DenseRange(3, 7, 1)->Unit(benchmark::kMicrosecond);

void BM_FullInfoSweep(benchmark::State& state) {
  Rng rng{193};
  const int delta = static_cast<int>(state.range(0));
  Multigraph g = make_loopy_tree(8, delta, rng);
  SweepViewFunction fn{delta};
  FullInfoEc alg{fn};
  for (auto _ : state) {
    RunResult r = run_ec(g, alg, delta + 2);
    benchmark::DoNotOptimize(r.message_bytes);
  }
}
BENCHMARK(BM_FullInfoSweep)->DenseRange(3, 7, 1)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

LDLB_BENCH_MAIN(report)
