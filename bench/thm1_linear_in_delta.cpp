// Theorem 1 + §1.3 — the headline reproduction.
//
// Paper claim: maximal fractional matching needs Ω(Δ) rounds in the LOCAL
// model, and the O(Δ)-round upper bound [3] is therefore optimal.
//
// Reproduction: for each Δ, run the Section-4 adversary against the
// O(Δ)-round EC algorithms and report (a) the certified locality radius —
// provably Δ-2, i.e. *linear in Δ* — against (b) the measured round count
// of the upper-bound algorithms. The two series bracket the true complexity
// from below and above with a gap of only a constant factor: the "shape"
// of Theorem 1.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "ldlb/core/adversary.hpp"
#include "ldlb/graph/generators.hpp"
#include "ldlb/local/simulator.hpp"
#include "ldlb/matching/seq_color_packing.hpp"
#include "ldlb/matching/two_phase_packing.hpp"
#include "ldlb/util/rng.hpp"

namespace {

using namespace ldlb;

int measured_rounds_on_loopy_graphs(EcAlgorithm& alg, int delta) {
  // Round count on the adversary's own graph family (loopy trees).
  Rng rng{2024};
  int rounds = 0;
  for (int trial = 0; trial < 3; ++trial) {
    Multigraph g = make_loopy_tree(6, delta, rng);
    rounds = std::max(rounds, run_ec(g, alg, 16 * delta + 16).rounds);
  }
  return rounds;
}

void report() {
  bench::section(
      "Theorem 1: certified lower bound vs measured upper bound (rounds)");
  bench::Table table{{"delta", "lower>=(adv)", "SeqColor", "TwoPhase",
                      "upper/lower"}};
  table.print_header();
  for (int delta = 3; delta <= 12; ++delta) {
    SeqColorPacking seq{delta};
    TwoPhasePacking two{delta};
    LowerBoundCertificate cert = run_adversary(seq, delta);
    int lower = cert.certified_radius() + 1;  // needs > Δ-2, i.e. >= Δ-1
    int seq_rounds = measured_rounds_on_loopy_graphs(seq, delta);
    int two_rounds = measured_rounds_on_loopy_graphs(two, delta);
    table.print_row(delta, lower, seq_rounds, two_rounds,
                    static_cast<double>(seq_rounds) / lower);
  }
  std::cout << "\nShape check: the certified radius grows linearly in delta\n"
               "(Δ-2), matching the O(Δ) upper bounds up to a constant —\n"
               "no o(Δ) algorithm exists (Theorem 1).\n";
}

void BM_AdversaryFullChain(benchmark::State& state) {
  const int delta = static_cast<int>(state.range(0));
  SeqColorPacking alg{delta};
  for (auto _ : state) {
    LowerBoundCertificate cert = run_adversary(alg, delta);
    benchmark::DoNotOptimize(cert.levels.size());
  }
  state.counters["levels"] = delta - 1;
  state.counters["final_nodes"] = static_cast<double>(1ll << (delta - 2));
}
BENCHMARK(BM_AdversaryFullChain)->DenseRange(3, 12, 1)
    ->Unit(benchmark::kMillisecond);

void BM_UpperBoundRun(benchmark::State& state) {
  const int delta = static_cast<int>(state.range(0));
  SeqColorPacking alg{delta};
  Rng rng{7};
  Multigraph g = make_loopy_tree(32, delta, rng);
  for (auto _ : state) {
    RunResult r = run_ec(g, alg, delta + 1);
    benchmark::DoNotOptimize(r.rounds);
  }
  state.counters["rounds"] = delta;
}
BENCHMARK(BM_UpperBoundRun)->DenseRange(4, 16, 2)
    ->Unit(benchmark::kMicrosecond);

void BM_CertificateValidation(benchmark::State& state) {
  const int delta = static_cast<int>(state.range(0));
  SeqColorPacking alg{delta};
  LowerBoundCertificate cert = run_adversary(alg, delta);
  for (auto _ : state) {
    bool ok = certificate_is_valid(cert, alg, /*check_loopiness=*/false);
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_CertificateValidation)->DenseRange(3, 9, 2)
    ->Unit(benchmark::kMillisecond);

}  // namespace

LDLB_BENCH_MAIN(report)
