// Theorem 1 + §1.3 — the headline reproduction.
//
// Paper claim: maximal fractional matching needs Ω(Δ) rounds in the LOCAL
// model, and the O(Δ)-round upper bound [3] is therefore optimal.
//
// Reproduction: for each Δ, run the Section-4 adversary against the
// O(Δ)-round EC algorithms and report (a) the certified locality radius —
// provably Δ-2, i.e. *linear in Δ* — against (b) the measured round count
// of the upper-bound algorithms. The two series bracket the true complexity
// from below and above with a gap of only a constant factor: the "shape"
// of Theorem 1.
#include <benchmark/benchmark.h>

#include <sys/resource.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <memory>
#include <sstream>

#include "bench_util.hpp"
#include "ldlb/core/adversary.hpp"
#include "ldlb/core/certificate.hpp"
#include "ldlb/fault/fleet.hpp"
#include "ldlb/graph/generators.hpp"
#include "ldlb/local/simulator.hpp"
#include "ldlb/matching/seq_color_packing.hpp"
#include "ldlb/matching/two_phase_packing.hpp"
#include "ldlb/recover/cert_log.hpp"
#include "ldlb/recover/snapshot_store.hpp"
#include "ldlb/util/ipc.hpp"
#include "ldlb/util/net.hpp"
#include "ldlb/util/rng.hpp"
#include "ldlb/util/thread_pool.hpp"
#include "ldlb/view/ball_store.hpp"
#include "ldlb/view/isomorphism.hpp"

namespace {

using namespace ldlb;

long peak_rss_kb() {
  struct rusage usage {};
  ::getrusage(RUSAGE_SELF, &usage);
  return usage.ru_maxrss;  // KiB on Linux
}

double elapsed_ms(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

// Optional pre-change reference timings, "delta:ms,delta:ms,...", recorded
// into the telemetry so regressions/speedups are visible next to the
// current numbers. scripts/bench.sh sets this to the timings measured on
// the commit before the parallel/fast-path work landed.
std::map<int, double> parse_baseline_env() {
  std::map<int, double> out;
  const char* s = std::getenv("LDLB_BENCH_BASELINE");
  if (s == nullptr) return out;
  std::istringstream is(s);
  std::string item;
  while (std::getline(is, item, ',')) {
    auto colon = item.find(':');
    if (colon == std::string::npos) continue;
    try {
      out[std::stoi(item.substr(0, colon))] = std::stod(item.substr(colon + 1));
    } catch (...) {
      // Malformed entries are skipped; telemetry just omits the baseline.
    }
  }
  return out;
}

int measured_rounds_on_loopy_graphs(EcAlgorithm& alg, int delta) {
  // Round count on the adversary's own graph family (loopy trees).
  Rng rng{2024};
  int rounds = 0;
  for (int trial = 0; trial < 3; ++trial) {
    Multigraph g = make_loopy_tree(6, delta, rng);
    rounds = std::max(rounds, run_ec(g, alg, 16 * delta + 16).rounds);
  }
  return rounds;
}

// One engine configuration to sweep: `threads` is the global pool size
// (1 = serial, 0 = hardware default), `workers` the fleet process count
// (0 = in-process run_adversary; >0 = run_adversary_fleet, whose output
// is byte-identical but whose wall time includes the IPC round-trips).
// `socket` routes the fleet over the TCP transport to a freshly forked
// localhost daemon instead of forked pipe workers, so the telemetry
// separates framing/handshake/heartbeat overhead from fork overhead.
struct SweepConfig {
  int threads = 1;
  int workers = 0;
  bool socket = false;
  bool print_table = false;
};

const char* transport_name(const SweepConfig& config) {
  if (config.workers == 0) return "in-process";
  return config.socket ? "socket" : "pipe";
}

void sweep(bench::JsonWriter& json, const SweepConfig& config,
           const std::map<int, double>& baseline) {
  ThreadPool::set_global_threads(config.threads);
  const std::string snapshot =
      (std::filesystem::temp_directory_path() /
       ("ldlb_bench_" + std::to_string(::getpid()) + ".snap"))
          .string();

  bench::Table table{{"delta", "lower>=(adv)", "SeqColor", "TwoPhase",
                      "upper/lower"}};
  if (config.print_table) table.print_header();

  // In-process configs sweep to the canonical ball engine's working
  // ceiling (Δ = 20, final graphs ~2^18 nodes); fleet configs stop at 12 —
  // beyond that the measurement is dominated by shipping multi-megabyte
  // graphs over the IPC channel, not by the engine under test.
  const int max_delta = config.workers == 0 ? 20 : 12;

  json.begin_object()
      .key("threads").value(global_pool().size())
      .key("workers").value(config.workers)
      .key("transport").value(transport_name(config))
      .key("runs").begin_array();
  for (int delta = 3; delta <= max_delta; ++delta) {
    SeqColorPacking seq{delta};
    TwoPhasePacking two{delta};
    const AlgorithmFactory factory = [delta]() {
      return std::make_unique<SeqColorPacking>(delta);
    };
    // Socket configs serve every rep's worker connections for this delta
    // from one localhost daemon (the daemon forks a child per connection,
    // so the measured cost is framing + handshake, not daemon startup).
    pid_t daemon_pid = -1;
    std::vector<RemoteEndpoint> remotes;
    if (config.workers > 0 && config.socket) {
      net::Listener listener = net::Listener::on("127.0.0.1", 0);
      remotes.push_back({"127.0.0.1", listener.port()});
      daemon_pid = ipc::spawn_child([&listener, factory, delta]() {
        return run_fleet_daemon(factory, delta, listener);
      });
      listener.close();
    }
    // Min over a few repetitions: single-shot wall times on shared CI
    // machines jitter by 10-20%, enough to blur a 2x comparison. The ball
    // cache is cleared before every repetition so each one is a cold-cache
    // run, like the single-shot measurement the baseline numbers came from.
    // Past Δ = 14 a single repetition keeps the sweep bounded; at that size
    // the run is long enough that scheduler jitter no longer dominates.
    const int reps = delta <= 14 ? 3 : 1;
    double adversary_ms = 0.0;
    double validate_ms = 0.0;
    bool valid = false;
    LowerBoundCertificate cert;
    FleetReport fleet_report;
    const BallStoreStats stats_before = ball_store_stats();
    for (int rep = 0; rep < reps; ++rep) {
      clear_ball_encoding_cache();
      auto t0 = std::chrono::steady_clock::now();
      if (config.workers > 0) {
        SnapshotStore store{snapshot};
        store.remove();  // a fresh chain every rep, never a resume
        FleetOptions options;
        options.workers = config.workers;
        options.remotes = remotes;
        cert = run_adversary_fleet(factory, delta, store, options,
                                   &fleet_report);
        store.remove();
      } else {
        cert = run_adversary(seq, delta);
      }
      const double a = elapsed_ms(t0);
      t0 = std::chrono::steady_clock::now();
      valid = certificate_is_valid(cert, seq, /*check_loopiness=*/false);
      const double v = elapsed_ms(t0);
      if (rep == 0 || a < adversary_ms) adversary_ms = a;
      if (rep == 0 || v < validate_ms) validate_ms = v;
    }
    if (daemon_pid > 0) {
      ipc::kill_process(daemon_pid);
      (void)ipc::wait_exit(daemon_pid, Deadline::in(10.0));
    }
    int lower = cert.certified_radius() + 1;  // needs > Δ-2, i.e. >= Δ-1
    int seq_rounds = measured_rounds_on_loopy_graphs(seq, delta);
    int two_rounds = measured_rounds_on_loopy_graphs(two, delta);
    if (config.print_table) {
      table.print_row(delta, lower, seq_rounds, two_rounds,
                      static_cast<double>(seq_rounds) / lower);
    }
    json.begin_object()
        .key("delta").value(delta)
        .key("adversary_ms").value(adversary_ms)
        .key("validate_ms").value(validate_ms)
        .key("valid").value(valid)
        .key("certified_radius").value(cert.certified_radius())
        .key("levels").value(static_cast<int>(cert.levels.size()))
        .key("final_nodes").value(cert.levels.back().g.node_count())
        .key("final_edges").value(cert.levels.back().g.edge_count())
        .key("seq_color_rounds").value(seq_rounds)
        .key("two_phase_rounds").value(two_rounds);
    // Durability telemetry: the append-only streaming-log footprint of this
    // chain (recover/cert_log.hpp), and the process peak RSS after the
    // fully-resident validation pass — the quantity the streaming validator
    // exists to undercut (see docs/ROBUSTNESS.md). For fleet configs, how
    // long the coordinator spent shipping its interned ball table to warm
    // (re)spawned workers — a cache-priming cost that buys the per-level
    // re-simulations and must never alter a certificate byte.
    json.key("cert_log_bytes")
        .value(static_cast<long long>(CertificateLog::serialize(cert).size()))
        .key("validate_peak_rss_kb")
        .value(static_cast<long long>(peak_rss_kb()));
    if (config.workers > 0) {
      json.key("ball_table_ship_ms").value(fleet_report.ball_table_ship_ms)
          .key("ball_table_bytes")
          .value(static_cast<long long>(fleet_report.ball_table_bytes))
          .key("ball_tables_shipped").value(fleet_report.ball_tables_shipped);
    }
    // Canonical ball engine telemetry for this delta point (all reps): how
    // often key queries were answered from the (graph, node, radius) memo,
    // and how often sub-ball signatures were already interned (structure
    // sharing across levels). Collisions must read zero — nonzero would be
    // a soundness bug, not a perf problem.
    const BallStoreStats stats_after = ball_store_stats();
    const auto rate = [](std::uint64_t hits, std::uint64_t total) {
      return total == 0 ? 0.0
                        : static_cast<double>(hits) / static_cast<double>(total);
    };
    json.key("ball_key_queries")
        .value(static_cast<long long>(stats_after.key_queries -
                                      stats_before.key_queries))
        .key("ball_key_memo_hit_rate")
        .value(rate(stats_after.memo_hits - stats_before.memo_hits,
                    stats_after.key_queries - stats_before.key_queries))
        .key("ball_intern_hit_rate")
        .value(rate(stats_after.intern_hits - stats_before.intern_hits,
                    stats_after.intern_lookups - stats_before.intern_lookups))
        .key("ball_key_collisions")
        .value(static_cast<long long>(stats_after.collisions));
    if (auto it = baseline.find(delta); it != baseline.end()) {
      json.key("baseline_adversary_ms").value(it->second);
      if (adversary_ms > 0) {
        json.key("speedup_vs_baseline").value(it->second / adversary_ms);
      }
    }
    json.end_object();
  }
  json.end_array().end_object();
}

void report() {
  bench::section(
      "Theorem 1: certified lower bound vs measured upper bound (rounds)");
  const std::map<int, double> baseline = parse_baseline_env();

  // Serial reference (prints the reproduction table), the multi-threaded
  // speculative engine, and the coordinator/worker fleet at two sizes on
  // each transport — all producing byte-identical certificates, so the
  // telemetry compares pure engine overheads/speedups on one axis per
  // config (and socket vs pipe isolates the TCP framing cost).
  const SweepConfig configs[] = {
      {/*threads=*/1, /*workers=*/0, /*socket=*/false, /*print_table=*/true},
      {/*threads=*/0, /*workers=*/0, /*socket=*/false,
       /*print_table=*/false},  // hw threads
      {/*threads=*/1, /*workers=*/2, /*socket=*/false, /*print_table=*/false},
      {/*threads=*/1, /*workers=*/4, /*socket=*/false, /*print_table=*/false},
      {/*threads=*/1, /*workers=*/2, /*socket=*/true, /*print_table=*/false},
      {/*threads=*/1, /*workers=*/4, /*socket=*/true, /*print_table=*/false},
  };
  bench::JsonWriter json;
  json.begin_object()
      .key("bench").value("adversary")
      .key("configs").begin_array();
  for (const SweepConfig& config : configs) sweep(json, config, baseline);
  json.end_array().end_object();
  json.write_file("BENCH_adversary.json");
  ThreadPool::set_global_threads(0);
  std::cout << "\nShape check: the certified radius grows linearly in delta\n"
               "(Δ-2), matching the O(Δ) upper bounds up to a constant —\n"
               "no o(Δ) algorithm exists (Theorem 1).\n";
}

void BM_AdversaryFullChain(benchmark::State& state) {
  const int delta = static_cast<int>(state.range(0));
  SeqColorPacking alg{delta};
  for (auto _ : state) {
    LowerBoundCertificate cert = run_adversary(alg, delta);
    benchmark::DoNotOptimize(cert.levels.size());
  }
  state.counters["levels"] = delta - 1;
  state.counters["final_nodes"] = static_cast<double>(1ll << (delta - 2));
}
BENCHMARK(BM_AdversaryFullChain)->DenseRange(3, 12, 1)
    ->DenseRange(14, 20, 2)
    ->Unit(benchmark::kMillisecond);

void BM_UpperBoundRun(benchmark::State& state) {
  const int delta = static_cast<int>(state.range(0));
  SeqColorPacking alg{delta};
  Rng rng{7};
  Multigraph g = make_loopy_tree(32, delta, rng);
  for (auto _ : state) {
    RunResult r = run_ec(g, alg, delta + 1);
    benchmark::DoNotOptimize(r.rounds);
  }
  state.counters["rounds"] = delta;
}
BENCHMARK(BM_UpperBoundRun)->DenseRange(4, 16, 2)
    ->Unit(benchmark::kMicrosecond);

void BM_CertificateValidation(benchmark::State& state) {
  const int delta = static_cast<int>(state.range(0));
  SeqColorPacking alg{delta};
  LowerBoundCertificate cert = run_adversary(alg, delta);
  for (auto _ : state) {
    bool ok = certificate_is_valid(cert, alg, /*check_loopiness=*/false);
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_CertificateValidation)->DenseRange(3, 9, 2)
    ->Unit(benchmark::kMillisecond);

}  // namespace

LDLB_BENCH_MAIN(report)
