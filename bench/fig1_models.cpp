// Figure 1 — the four deterministic models ID / OI / PO / EC and their
// relative power (Section 2.1).
//
// Paper claims reproduced as runnable separations:
//   * maximal matching is solvable by a local algorithm in EC but not in
//     the anonymous PO model (directed cycles are symmetric);
//   * 2-colouring 1-regular graphs (i.e. K2 components) is trivial in
//     ID/OI/PO but impossible in EC (the two endpoints of an edge have
//     identical views);
//   * maximal *fractional* matching is solvable in all four models — the
//     point of the paper is that it costs Θ(Δ) everywhere.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "ldlb/cover/factor_graph.hpp"
#include "ldlb/graph/edge_coloring.hpp"
#include "ldlb/graph/generators.hpp"
#include "ldlb/local/simulator.hpp"
#include "ldlb/matching/checker.hpp"
#include "ldlb/matching/maximal_matching.hpp"
#include "ldlb/matching/proposal_packing.hpp"
#include "ldlb/matching/seq_color_packing.hpp"
#include "ldlb/util/rng.hpp"

namespace {

using namespace ldlb;

void report() {
  bench::section("Figure 1: what each model can(not) do");
  bench::Table table{{"task", "ID", "OI", "PO", "EC"}, 22};
  table.print_header();

  // Maximal matching: EC greedy succeeds; PO cannot break the symmetry of
  // a directed cycle (every node of C_n maps to the one-node factor graph,
  // so any anonymous algorithm outputs identical weights — an integral
  // matching would need weight 1 on some edges and 0 on others).
  {
    Digraph cycle = make_directed_cycle(6);
    DiFactorGraph fg = factor_graph(cycle);
    bool po_symmetric = fg.graph.node_count() == 1;
    Rng rng{1};
    Multigraph ec = greedy_edge_coloring(make_cycle(6));
    bool ec_ok = is_maximal_matching(ec, ec_greedy_matching(ec).matching);
    table.print_row("maximal matching", "yes", "yes",
                    po_symmetric ? "no (symmetry)" : "?",
                    ec_ok ? "yes" : "no");
  }

  // 2-colouring K2: impossible in EC (identical views), trivial with order
  // or identifiers.
  {
    Multigraph k2(2);
    k2.add_edge(0, 1, 0);
    FactorGraph fg = factor_graph(k2);
    bool ec_symmetric = fg.graph.node_count() == 1;
    table.print_row("2-colour K2", "yes", "yes", "yes",
                    ec_symmetric ? "no (lift)" : "?");
  }

  // Maximal fractional matching: all four models, Θ(Δ).
  {
    Rng rng{2};
    Multigraph g = greedy_edge_coloring(make_random_graph(12, 0.3, rng));
    int k = colors_used(g);
    SeqColorPacking ec_alg{k};
    bool ec_ok = check_maximal(g, run_ec(g, ec_alg, k + 1).matching).ok;
    Digraph po_g = make_random_po_graph(12, 0.3, rng);
    ProposalPacking po_alg;
    bool po_ok =
        check_maximal(po_g, run_po(po_g, po_alg,
                                   proposal_packing_round_budget(
                                       po_g.node_count(), po_g.arc_count()))
                                .matching)
            .ok;
    table.print_row("maximal fractional", "yes", "yes", po_ok ? "yes" : "no",
                    ec_ok ? "yes" : "no");
  }
  std::cout << "\n(The lower bound of Theorem 1 applies to ALL four models:\n"
               " the Section 5 simulations transport it from EC up to ID.)\n";
}

void BM_EcGreedyMatching(benchmark::State& state) {
  Rng rng{3};
  Multigraph g = greedy_edge_coloring(
      make_random_bounded_degree(static_cast<NodeId>(state.range(0)), 6, 0.8,
                                 rng));
  for (auto _ : state) {
    auto run = ec_greedy_matching(g);
    benchmark::DoNotOptimize(run.rounds);
  }
}
BENCHMARK(BM_EcGreedyMatching)->Arg(100)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMicrosecond);

void BM_FactorGraphSymmetryDetection(benchmark::State& state) {
  Digraph cycle = make_directed_cycle(static_cast<NodeId>(state.range(0)));
  for (auto _ : state) {
    DiFactorGraph fg = factor_graph(cycle);
    benchmark::DoNotOptimize(fg.graph.node_count());
  }
}
BENCHMARK(BM_FactorGraphSymmetryDetection)->Arg(16)->Arg(256)->Arg(4096)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

LDLB_BENCH_MAIN(report)
