// §1.1 — the maximal matching landscape the paper situates itself in.
//
// Reproduction: round counts of Panconesi–Rizzi (deterministic,
// O(Δ + log* n)) and Israeli–Itai (randomised, O(log n)):
//   series A: Δ sweep at fixed n — PR grows linearly in Δ, II stays flat;
//   series B: n sweep at fixed Δ — PR stays flat (log* is invisible),
//             II grows slowly (logarithmically).
// This is the crossover structure behind the open question the paper
// discusses: can the Δ-term be removed? (Theorem 1 is the first evidence
// that for the *fractional* relaxation it cannot.)
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "ldlb/graph/generators.hpp"
#include "ldlb/matching/maximal_matching.hpp"
#include "ldlb/util/rng.hpp"

namespace {

using namespace ldlb;

int pr_rounds(NodeId n, int delta, Rng& rng) {
  IdGraph g = with_sequential_ids(
      make_random_bounded_degree(n, delta, 0.9, rng));
  rng.shuffle(g.ids);
  return panconesi_rizzi_matching(g).rounds;
}

int ii_rounds(NodeId n, int delta, Rng& rng, int trials = 5) {
  int worst = 0;
  for (int t = 0; t < trials; ++t) {
    Multigraph g = make_random_bounded_degree(n, delta, 0.9, rng);
    worst = std::max(worst, israeli_itai_matching(g, rng).rounds);
  }
  return worst;
}

void report() {
  Rng rng{71};
  bench::section("§1.1 series A: rounds vs Δ (n = 400)");
  bench::Table ta{{"delta", "PanconesiRizzi", "IsraeliItai(max of 5)"}};
  ta.print_header();
  for (int delta : {2, 4, 8, 16, 32}) {
    ta.print_row(delta, pr_rounds(400, delta, rng),
                 ii_rounds(400, delta, rng));
  }
  bench::section("§1.1 series B: rounds vs n (Δ = 4)");
  bench::Table tb{{"n", "PanconesiRizzi", "IsraeliItai(max of 5)"}};
  tb.print_header();
  for (NodeId n : {50, 200, 800, 3200}) {
    tb.print_row(n, pr_rounds(n, 4, rng), ii_rounds(n, 4, rng));
  }
  std::cout << "\nShape: PR is linear in Δ and flat in n; II is flat in Δ\n"
               "and grows gently with n — the O(Δ + log* n) vs O(log n)\n"
               "trade-off of Section 1.1.\n";
}

void BM_PanconesiRizzi(benchmark::State& state) {
  Rng rng{72};
  IdGraph g = with_sequential_ids(make_random_bounded_degree(
      static_cast<NodeId>(state.range(0)), 6, 0.9, rng));
  for (auto _ : state) {
    auto run = panconesi_rizzi_matching(g);
    benchmark::DoNotOptimize(run.rounds);
  }
}
BENCHMARK(BM_PanconesiRizzi)->Arg(100)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMicrosecond);

void BM_IsraeliItai(benchmark::State& state) {
  Rng rng{73};
  Multigraph g = make_random_bounded_degree(
      static_cast<NodeId>(state.range(0)), 6, 0.9, rng);
  for (auto _ : state) {
    auto run = israeli_itai_matching(g, rng);
    benchmark::DoNotOptimize(run.rounds);
  }
}
BENCHMARK(BM_IsraeliItai)->Arg(100)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

LDLB_BENCH_MAIN(report)
