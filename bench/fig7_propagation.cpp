// Figure 7 — the propagation principle (Fact 3) in action.
//
// Reproduction: per-level propagation walk lengths in the adversary chain
// (how far the disagreement travels before resting on a loop), and a direct
// microbenchmark of the walker on long saturated paths.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "ldlb/core/adversary.hpp"
#include "ldlb/core/propagation.hpp"
#include "ldlb/graph/multigraph.hpp"
#include "ldlb/matching/seq_color_packing.hpp"
#include "ldlb/matching/two_phase_packing.hpp"

namespace {

using namespace ldlb;

void report() {
  bench::section("Figure 7: propagation walk lengths per adversary level");
  bench::Table table{{"delta", "algorithm", "walk_lengths(levels 1..)"},
                     24};
  table.print_header();
  for (int delta : {6, 9, 12}) {
    for (int which : {0, 1}) {
      std::unique_ptr<EcAlgorithm> alg;
      if (which == 0) {
        alg = std::make_unique<SeqColorPacking>(delta);
      } else {
        alg = std::make_unique<TwoPhasePacking>(delta);
      }
      LowerBoundCertificate cert = run_adversary(*alg, delta);
      std::string lengths;
      for (const auto& lv : cert.levels) {
        if (lv.level == 0) continue;
        lengths += std::to_string(lv.propagation_steps) + " ";
      }
      table.print_row(delta, alg->name(), lengths);
    }
  }
  std::cout << "\nShort walks mean the disagreement resolves near the mix\n"
               "edge; the tree structure (P3) guarantees termination at a\n"
               "loop (Fact 3).\n";
}

// Direct walker benchmark: the worst case — the disagreement travels the
// whole length of a saturated path before resolving at the far loop.
void BM_PropagationWalk(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  // Path 0..n-1 (edges 0..n-2), a seed loop at node 0 (edge n-1) and a
  // resolving loop at node n-1 (edge n).
  Multigraph g(n);
  for (NodeId v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1, v % 2);
  const EdgeId seed_loop = g.add_edge(0, 0, 2);
  const EdgeId far_loop = g.add_edge(n - 1, n - 1, 3);

  // y1: 1/2 on every path edge; y2: alternating 1/3, 2/3. Both saturate
  // every interior node (sums 1/2+1/2 and 1/3+2/3); the loops absorb the
  // boundary residuals. The matchings disagree on every path edge and on
  // the seed loop, so the walk runs the full n-1 steps.
  FractionalMatching y1(g.edge_count()), y2(g.edge_count());
  for (EdgeId e = 0; e + 2 < g.edge_count(); ++e) {
    y1.set_weight(e, Rational(1, 2));
    y2.set_weight(e, e % 2 == 0 ? Rational(1, 3) : Rational(2, 3));
  }
  auto fix_loop = [&](FractionalMatching& y, NodeId v, EdgeId loop) {
    Rational others = y.node_sum(g, v) - y.weight(loop);
    y.set_weight(loop, Rational(1) - others);
  };
  for (auto* y : {&y1, &y2}) {
    fix_loop(*y, 0, seed_loop);
    fix_loop(*y, n - 1, far_loop);
  }

  for (auto _ : state) {
    PropagationResult r = propagate_disagreement(g, y1, y2, 0, seed_loop);
    benchmark::DoNotOptimize(r.node);
  }
  state.counters["walk"] = static_cast<double>(n - 1);
}
BENCHMARK(BM_PropagationWalk)->Arg(64)->Arg(1024)->Arg(16384)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

LDLB_BENCH_MAIN(report)
