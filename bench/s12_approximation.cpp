// §1.2 — maximal fractional matchings approximate maximum-weight ones.
//
// Reproduction of the section's quantitative claims:
//   * a maximal FM is a 1/2-approximation of the maximum-weight FM — we
//     measure the actual ratio across graph families against the exact
//     optimum (bipartite double cover + Hopcroft–Karp);
//   * exact maximum-weight FMs are not locally computable at all: on odd
//     paths the optimal weight pattern flips globally when one endpoint
//     changes — we exhibit the Ω(n) instability;
//   * the 2-approximate vertex cover application [3, 4].
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "ldlb/graph/edge_coloring.hpp"
#include "ldlb/graph/generators.hpp"
#include "ldlb/local/simulator.hpp"
#include "ldlb/matching/checker.hpp"
#include "ldlb/matching/max_fractional.hpp"
#include "ldlb/matching/seq_color_packing.hpp"
#include "ldlb/matching/vertex_cover.hpp"
#include "ldlb/util/rng.hpp"

namespace {

using namespace ldlb;

FractionalMatching maximal_fm(const Multigraph& colored) {
  int k = colors_used(colored);
  SeqColorPacking alg{k};
  return run_ec(colored, alg, k + 1).matching;
}

void report() {
  bench::section("§1.2: maximal FM weight vs exact maximum (ratio >= 1/2)");
  bench::Table table{{"family", "n", "maximal_w", "optimal_w", "ratio"}};
  table.print_header();
  Rng rng{81};
  double worst = 1.0;
  auto run_case = [&](const std::string& name, const Multigraph& g) {
    Multigraph colored = greedy_edge_coloring(g);
    FractionalMatching y = maximal_fm(colored);
    Rational got = y.total_weight();
    Rational opt = max_fractional_weight(g);
    double ratio = opt.is_zero() ? 1.0 : got.to_double() / opt.to_double();
    worst = std::min(worst, ratio);
    table.print_row(name, g.node_count(), got.to_string(), opt.to_string(),
                    ratio);
  };
  run_case("path P9", make_path(9));
  run_case("cycle C9", make_cycle(9));
  run_case("star S12", make_star(12));
  run_case("K7", make_complete(7));
  run_case("K3,5", make_complete_bipartite(3, 5));
  for (int i = 0; i < 4; ++i) {
    run_case("G(24, .2)", make_random_graph(24, 0.2, rng));
  }
  std::cout << "\nworst ratio observed: " << worst
            << "  (paper: maximal => ratio >= 1/2; Kuhn et al. give a\n"
               " matching Ω(log Δ) lower bound for any constant factor)\n";

  bench::section("§1.2: exact maximum-weight FM is globally coupled (Ω(n))");
  // On a path with an odd number of edges the optimum is unique — the
  // alternating pattern 1,0,...,1 — and satisfies y_i + y_{i+1} = 1 along
  // the whole path: every edge's weight is a function of the far endpoint,
  // so computing it locally needs Ω(n) rounds (Section 1.2).
  for (NodeId n : {6, 10}) {
    auto r = max_fractional_matching(make_path(n));
    std::cout << "P" << n << " optimal weights:";
    bool coupled = true;
    for (EdgeId e = 0; e < r.matching.edge_count(); ++e) {
      std::cout << " " << r.matching.weight(e);
      if (e > 0 &&
          r.matching.weight(e) + r.matching.weight(e - 1) != Rational(1)) {
        coupled = false;
      }
    }
    std::cout << "  (total " << r.weight << "; end-to-end coupling y_i + "
              << "y_{i+1} = 1: " << (coupled ? "holds" : "VIOLATED") << ")\n";
  }

  bench::section("Vertex cover application: |cover| <= 2 OPT");
  bench::Table vc{{"family", "cover", "optimum", "ratio"}};
  vc.print_header();
  for (int i = 0; i < 4; ++i) {
    Multigraph g = make_random_graph(16, 0.25, rng);
    Multigraph colored = greedy_edge_coloring(g);
    FractionalMatching y = maximal_fm(colored);
    auto cover = vertex_cover_from_packing(colored, y);
    int opt = min_vertex_cover_size(g);
    vc.print_row("G(16, .25)", cover.size(), opt,
                 opt == 0 ? 1.0
                          : static_cast<double>(cover.size()) / opt);
  }
}

void BM_ExactOptimum(benchmark::State& state) {
  Rng rng{82};
  Multigraph g = make_random_graph(static_cast<NodeId>(state.range(0)), 0.1,
                                   rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(max_fractional_weight(g));
  }
}
BENCHMARK(BM_ExactOptimum)->Arg(32)->Arg(128)->Arg(512)
    ->Unit(benchmark::kMicrosecond);

void BM_MaximalFm(benchmark::State& state) {
  Rng rng{83};
  Multigraph g = greedy_edge_coloring(
      make_random_graph(static_cast<NodeId>(state.range(0)), 0.1, rng));
  int k = colors_used(g);
  SeqColorPacking alg{k};
  for (auto _ : state) {
    RunResult r = run_ec(g, alg, k + 1);
    benchmark::DoNotOptimize(r.rounds);
  }
}
BENCHMARK(BM_MaximalFm)->Arg(32)->Arg(128)->Arg(512)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

LDLB_BENCH_MAIN(report)
