// Figure 9 — the PO ⇐ OI simulation (Section 5.3, equation (4)).
//
// Reproduction: run the rank-seeded OI algorithm through the canonical-
// order universal-cover simulation on PO graphs; report view sizes (they
// grow exponentially with the radius — the simulation is information-
// theoretic, not cheap), output validity, and the cost split between view
// expansion, embedding/ordering, and the inner OI computation.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "ldlb/core/sim_po_oi.hpp"
#include "ldlb/cover/universal_cover.hpp"
#include "ldlb/graph/generators.hpp"
#include "ldlb/matching/checker.hpp"
#include "ldlb/order/embed.hpp"
#include "ldlb/util/rng.hpp"

namespace {

using namespace ldlb;

void report() {
  bench::section("Figure 9: OI algorithm on PO graphs via (UG, canonical ≺)");
  bench::Table table{{"graph", "delta", "phases", "radius", "max_view",
                      "maximal"}, 13};
  table.print_header();
  Rng rng{51};
  auto run_case = [&](const std::string& name, const Digraph& g,
                      int phases) {
    RankSeededPacking aoi{phases};
    int t = aoi.radius(g.max_degree());
    int max_view = 0;
    for (NodeId v = 0; v < g.node_count(); ++v) {
      max_view = std::max(max_view, universal_cover_view(g, v, t).size());
    }
    FractionalMatching y = simulate_oi_on_po(g, aoi);
    table.print_row(name, g.max_degree(), phases, t, max_view,
                    check_maximal(g, y).ok ? "yes" : "NO");
  };
  run_case("dir cycle 8", make_directed_cycle(8), 4);
  run_case("dir loop", make_directed_cycle(1), 6);
  {
    Digraph g(2);
    g.add_arc(0, 1, 0);
    g.add_arc(0, 0, 1);
    g.add_arc(1, 1, 1);
    run_case("loopy pair", g, 4);
  }
  {
    Digraph g = make_random_po_graph(7, 0.3, rng);
    run_case("random PO", g, 5);
  }
  std::cout << "\nView sizes grow like Δ^t — the simulation preserves *round*\n"
               "complexity, not computation; exactly the paper's trade.\n";
}

void BM_ViewExpansion(benchmark::State& state) {
  Digraph g = make_directed_cycle(16);
  const int t = static_cast<int>(state.range(0));
  for (auto _ : state) {
    DiViewTree v = universal_cover_view(g, 0, t);
    benchmark::DoNotOptimize(v.size());
  }
}
BENCHMARK(BM_ViewExpansion)->DenseRange(2, 10, 2)
    ->Unit(benchmark::kMicrosecond);

void BM_CanonicalRanks(benchmark::State& state) {
  Digraph g = make_directed_cycle(16);
  DiViewTree view = universal_cover_view(g, 0, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto ranks = order::canonical_ranks(view);
    benchmark::DoNotOptimize(ranks.size());
  }
  state.counters["view_nodes"] = view.size();
}
BENCHMARK(BM_CanonicalRanks)->DenseRange(2, 10, 2)
    ->Unit(benchmark::kMicrosecond);

void BM_FullSimulation(benchmark::State& state) {
  Digraph g = make_directed_cycle(static_cast<NodeId>(state.range(0)));
  RankSeededPacking aoi{3};
  for (auto _ : state) {
    FractionalMatching y = simulate_oi_on_po(g, aoi);
    benchmark::DoNotOptimize(y.edge_count());
  }
}
BENCHMARK(BM_FullSimulation)->Arg(4)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMillisecond);

}  // namespace

LDLB_BENCH_MAIN(report)
