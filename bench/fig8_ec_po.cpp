// Figure 8 — the EC ⇐ PO simulation (Section 5.1).
//
// Reproduction: run the PO proposal algorithm natively on PO graphs and
// through the node-local simulation wrapper on EC graphs; report round
// counts (the simulation is round-preserving) and verify the outputs.
// Then run the Section-4 adversary against the simulated algorithm — the
// §5.5 composition — and report the certified radius.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "ldlb/core/adversary.hpp"
#include "ldlb/core/sim_ec_po.hpp"
#include "ldlb/graph/edge_coloring.hpp"
#include "ldlb/graph/generators.hpp"
#include "ldlb/local/simulator.hpp"
#include "ldlb/matching/checker.hpp"
#include "ldlb/matching/proposal_packing.hpp"
#include "ldlb/util/rng.hpp"

namespace {

using namespace ldlb;

void report() {
  bench::section("Figure 8: PO algorithm run on EC graphs via simulation");
  bench::Table table{{"family", "n", "delta", "rounds", "maximal"}};
  table.print_header();
  Rng rng{41};
  auto run_case = [&](const std::string& name, const Multigraph& g) {
    ProposalPacking po;
    EcFromPo alg{po};
    RunResult r = run_ec(
        g, alg,
        proposal_packing_round_budget(g.node_count(), 2 * g.edge_count()));
    table.print_row(name, g.node_count(), g.max_degree(), r.rounds,
                    check_maximal(g, r.matching).ok ? "yes" : "NO");
  };
  run_case("cycle", greedy_edge_coloring(make_cycle(32)));
  run_case("star", greedy_edge_coloring(make_star(12)));
  run_case("random d<=6", greedy_edge_coloring(
                              make_random_bounded_degree(64, 6, 0.8, rng)));
  run_case("loopy tree", make_loopy_tree(16, 8, rng));
  run_case("complete K8", greedy_edge_coloring(make_complete(8)));

  bench::section("§5.5 composition: adversary vs simulated PO algorithm");
  bench::Table table2{{"delta", "certified_radius", "valid"}};
  table2.print_header();
  for (int delta : {3, 4, 5, 6}) {
    ProposalPacking po;
    EcFromPo alg{po};
    AdversaryOptions opts;
    opts.max_rounds = 20000;
    LowerBoundCertificate cert = run_adversary(alg, delta, opts);
    table2.print_row(delta, cert.certified_radius(),
                     certificate_is_valid(cert, alg, false) ? "yes" : "NO");
  }
}

void BM_NativePo(benchmark::State& state) {
  Rng rng{42};
  Digraph g = make_random_po_graph(static_cast<NodeId>(state.range(0)),
                                   6.0 / static_cast<double>(state.range(0)),
                                   rng);
  ProposalPacking po;
  for (auto _ : state) {
    RunResult r = run_po(
        g, po, proposal_packing_round_budget(g.node_count(), g.arc_count()));
    benchmark::DoNotOptimize(r.rounds);
  }
}
BENCHMARK(BM_NativePo)->Arg(32)->Arg(128)->Arg(512)
    ->Unit(benchmark::kMicrosecond);

void BM_SimulatedOnEc(benchmark::State& state) {
  Rng rng{43};
  Multigraph g = greedy_edge_coloring(make_random_bounded_degree(
      static_cast<NodeId>(state.range(0)), 6, 0.8, rng));
  ProposalPacking po;
  EcFromPo alg{po};
  for (auto _ : state) {
    RunResult r = run_ec(
        g, alg,
        proposal_packing_round_budget(g.node_count(), 2 * g.edge_count()));
    benchmark::DoNotOptimize(r.rounds);
  }
}
BENCHMARK(BM_SimulatedOnEc)->Arg(32)->Arg(128)->Arg(512)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

LDLB_BENCH_MAIN(report)
