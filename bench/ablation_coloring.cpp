// Ablation — the EC model's colouring constant.
//
// The EC model (Section 2.1) assumes a proper edge colouring with O(Δ)
// colours; the constant directly multiplies the colour-sweep algorithms'
// round counts. We compare greedy (≤ 2Δ−1 colours) with Misra–Gries
// (≤ Δ+1, Vizing's bound) and report the resulting SeqColorPacking rounds:
// the upper-bound side of the Theorem 1 bracket tightens from ~2Δ to Δ+1,
// while the certified lower bound stays Δ−1 — the gap closes to O(1).
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "ldlb/graph/edge_coloring.hpp"
#include "ldlb/graph/generators.hpp"
#include "ldlb/graph/misra_gries.hpp"
#include "ldlb/local/simulator.hpp"
#include "ldlb/matching/checker.hpp"
#include "ldlb/matching/seq_color_packing.hpp"
#include "ldlb/util/rng.hpp"

namespace {

using namespace ldlb;

int packing_rounds(const Multigraph& colored) {
  int k = colors_used(colored);
  SeqColorPacking alg{k};
  RunResult r = run_ec(colored, alg, k + 1);
  LDLB_ENSURE(check_maximal(colored, r.matching).ok);
  return r.rounds;
}

void report() {
  bench::section("Ablation: colouring constant vs packing rounds");
  bench::Table table{{"delta", "greedy_colours", "greedy_rounds",
                      "vizing_colours", "vizing_rounds", "lower_bound"},
                     15};
  table.print_header();
  Rng rng{151};
  for (int delta : {4, 8, 16, 24}) {
    Multigraph g = make_random_regular(48, delta, rng);
    Multigraph greedy = greedy_edge_coloring(g);
    Multigraph vizing = misra_gries_coloring(g);
    table.print_row(delta, colors_used(greedy), packing_rounds(greedy),
                    colors_used(vizing), packing_rounds(vizing), delta - 1);
  }
  std::cout << "\nMisra-Gries narrows the upper bound to Δ+1 rounds against\n"
               "the certified Δ-1 lower bound: the Θ(Δ) complexity of\n"
               "Theorem 1 is pinned down to within two rounds.\n";
}

void BM_GreedyColoring(benchmark::State& state) {
  Rng rng{152};
  Multigraph g = make_random_regular(static_cast<NodeId>(state.range(0)), 8,
                                     rng);
  for (auto _ : state) {
    Multigraph c = greedy_edge_coloring(g);
    benchmark::DoNotOptimize(c.edge_count());
  }
}
BENCHMARK(BM_GreedyColoring)->Arg(32)->Arg(128)->Arg(512)
    ->Unit(benchmark::kMicrosecond);

void BM_MisraGries(benchmark::State& state) {
  Rng rng{153};
  Multigraph g = make_random_regular(static_cast<NodeId>(state.range(0)), 8,
                                     rng);
  for (auto _ : state) {
    Multigraph c = misra_gries_coloring(g);
    benchmark::DoNotOptimize(c.edge_count());
  }
}
BENCHMARK(BM_MisraGries)->Arg(32)->Arg(128)->Arg(512)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

LDLB_BENCH_MAIN(report)
