// Figure 5 — the base case of the lower-bound construction (Section 4.2).
//
// Reproduction: for each Δ, run the base case against both packing
// algorithms and report the removed loop's weight, the witness colour, and
// the two disagreeing weights — the exact data Figure 5 depicts.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "ldlb/core/base_case.hpp"
#include "ldlb/matching/seq_color_packing.hpp"
#include "ldlb/matching/two_phase_packing.hpp"

namespace {

using namespace ldlb;

void report() {
  bench::section("Figure 5: base case (G_0, H_0) witnesses");
  bench::Table table{{"delta", "algorithm", "witness_colour", "w(G_0)",
                      "w(H_0)"}};
  table.print_header();
  for (int delta : {3, 5, 8, 12}) {
    {
      SeqColorPacking alg{delta};
      CertificateLevel lv = build_base_case(alg, delta, delta + 1);
      table.print_row(delta, "SeqColor", lv.c, lv.g_weight.to_string(),
                      lv.h_weight.to_string());
    }
    {
      TwoPhasePacking alg{delta};
      CertificateLevel lv = build_base_case(alg, delta, 2 * delta + 1);
      table.print_row(delta, "TwoPhase", lv.c, lv.g_weight.to_string(),
                      lv.h_weight.to_string());
    }
  }
  std::cout << "\nRemoving a non-zero-weight loop forces some shared loop's\n"
               "weight to change (Figure 5): w(G_0) != w(H_0) on colour c_0.\n";
}

void BM_BaseCase(benchmark::State& state) {
  const int delta = static_cast<int>(state.range(0));
  SeqColorPacking alg{delta};
  for (auto _ : state) {
    CertificateLevel lv = build_base_case(alg, delta, delta + 1);
    benchmark::DoNotOptimize(lv.c);
  }
}
BENCHMARK(BM_BaseCase)->DenseRange(3, 15, 3)->Unit(benchmark::kMicrosecond);

}  // namespace

LDLB_BENCH_MAIN(report)
