// Shared helpers for the reproduction benchmarks.
//
// Every bench binary prints, before the google-benchmark timings, a
// "reproduction report": the series/table the corresponding paper figure or
// claim is about (see EXPERIMENTS.md for the mapping). The report is the
// scientific payload; the timings quantify the implementation.
#pragma once

#include <benchmark/benchmark.h>

#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

namespace ldlb::bench {

/// Fixed-width table writer for the reproduction reports.
class Table {
 public:
  explicit Table(std::vector<std::string> headers, int width = 16)
      : headers_(std::move(headers)), width_(width) {}

  void print_header() const {
    for (const auto& h : headers_) {
      std::cout << std::left << std::setw(width_) << h;
    }
    std::cout << "\n";
    std::cout << std::string(headers_.size() * static_cast<std::size_t>(width_),
                             '-')
              << "\n";
  }

  template <typename... Cells>
  void print_row(Cells&&... cells) const {
    (print_cell(std::forward<Cells>(cells)), ...);
    std::cout << "\n";
  }

 private:
  template <typename T>
  void print_cell(T&& value) const {
    std::cout << std::left << std::setw(width_) << value;
  }

  std::vector<std::string> headers_;
  int width_;
};

inline void section(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n";
}

}  // namespace ldlb::bench

/// Standard main: report first, then timings.
#define LDLB_BENCH_MAIN(report_fn)                        \
  int main(int argc, char** argv) {                       \
    report_fn();                                          \
    ::benchmark::Initialize(&argc, argv);                 \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    ::benchmark::RunSpecifiedBenchmarks();                \
    ::benchmark::Shutdown();                              \
    return 0;                                             \
  }
