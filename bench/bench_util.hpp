// Shared helpers for the reproduction benchmarks.
//
// Every bench binary prints, before the google-benchmark timings, a
// "reproduction report": the series/table the corresponding paper figure or
// claim is about (see EXPERIMENTS.md for the mapping). The report is the
// scientific payload; the timings quantify the implementation.
#pragma once

#include <benchmark/benchmark.h>

#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace ldlb::bench {

/// Fixed-width table writer for the reproduction reports.
class Table {
 public:
  explicit Table(std::vector<std::string> headers, int width = 16)
      : headers_(std::move(headers)), width_(width) {}

  void print_header() const {
    for (const auto& h : headers_) {
      std::cout << std::left << std::setw(width_) << h;
    }
    std::cout << "\n";
    std::cout << std::string(headers_.size() * static_cast<std::size_t>(width_),
                             '-')
              << "\n";
  }

  template <typename... Cells>
  void print_row(Cells&&... cells) const {
    (print_cell(std::forward<Cells>(cells)), ...);
    std::cout << "\n";
  }

 private:
  template <typename T>
  void print_cell(T&& value) const {
    std::cout << std::left << std::setw(width_) << value;
  }

  std::vector<std::string> headers_;
  int width_;
};

inline void section(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n";
}

/// Minimal streaming JSON writer — just enough for the BENCH_*.json
/// telemetry files (objects, arrays, strings, numbers, bools) without an
/// external dependency. Usage:
///   JsonWriter j;
///   j.begin_object().key("runs").begin_array() ... .end_array().end_object();
///   j.write_file("BENCH_foo.json");
class JsonWriter {
 public:
  JsonWriter& begin_object() {
    pre();
    os_ << '{';
    first_.push_back(true);
    return *this;
  }
  JsonWriter& end_object() {
    os_ << '}';
    first_.pop_back();
    return *this;
  }
  JsonWriter& begin_array() {
    pre();
    os_ << '[';
    first_.push_back(true);
    return *this;
  }
  JsonWriter& end_array() {
    os_ << ']';
    first_.pop_back();
    return *this;
  }
  JsonWriter& key(const std::string& k) {
    pre();
    write_string(k);
    os_ << ':';
    pending_value_ = true;
    return *this;
  }
  JsonWriter& value(const std::string& v) {
    pre();
    write_string(v);
    return *this;
  }
  JsonWriter& value(const char* v) { return value(std::string(v)); }
  JsonWriter& value(bool v) {
    pre();
    os_ << (v ? "true" : "false");
    return *this;
  }
  JsonWriter& value(double v) {
    pre();
    std::ostringstream tmp;
    tmp << std::setprecision(12) << v;
    os_ << tmp.str();
    return *this;
  }
  JsonWriter& value(long long v) {
    pre();
    os_ << v;
    return *this;
  }
  JsonWriter& value(int v) { return value(static_cast<long long>(v)); }

  [[nodiscard]] std::string str() const { return os_.str(); }

  void write_file(const std::string& path) const {
    std::ofstream out(path);
    out << os_.str() << "\n";
    std::cout << "telemetry written to " << path << "\n";
  }

 private:
  // Comma management: a comma precedes every element of the enclosing
  // container except the first, and never between a key and its value.
  void pre() {
    if (pending_value_) {
      pending_value_ = false;
      return;
    }
    if (!first_.empty()) {
      if (first_.back()) {
        first_.back() = false;
      } else {
        os_ << ',';
      }
    }
  }

  void write_string(const std::string& s) {
    os_ << '"';
    for (char c : s) {
      switch (c) {
        case '"': os_ << "\\\""; break;
        case '\\': os_ << "\\\\"; break;
        case '\n': os_ << "\\n"; break;
        case '\t': os_ << "\\t"; break;
        case '\r': os_ << "\\r"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            os_ << "\\u" << std::hex << std::setw(4) << std::setfill('0')
                << static_cast<int>(c) << std::dec << std::setfill(' ');
          } else {
            os_ << c;
          }
      }
    }
    os_ << '"';
  }

  std::ostringstream os_;
  std::vector<bool> first_;
  bool pending_value_ = false;
};

}  // namespace ldlb::bench

/// Standard main: report first, then timings.
#define LDLB_BENCH_MAIN(report_fn)                        \
  int main(int argc, char** argv) {                       \
    report_fn();                                          \
    ::benchmark::Initialize(&argc, argv);                 \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    ::benchmark::RunSpecifiedBenchmarks();                \
    ::benchmark::Shutdown();                              \
    return 0;                                             \
  }
