// Figure 6 — the unfold-and-mix step (Section 4.3).
//
// Reproduction: walk the inductive chain at a fixed Δ and report, per
// level, the graph sizes (they double), which branch the mix decision took
// (GG/GH vs HH/GH), and the disagreeing witness weights.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "ldlb/core/adversary.hpp"
#include "ldlb/core/base_case.hpp"
#include "ldlb/cover/lift.hpp"
#include "ldlb/matching/two_phase_packing.hpp"

namespace {

using namespace ldlb;

void report() {
  const int delta = 9;
  bench::section("Figure 6: unfold & mix chain at delta = 9 (TwoPhase)");
  bench::Table table{{"level", "nodes(G_i)", "edges(G_i)", "colour",
                      "w_g", "w_h"}, 12};
  table.print_header();
  TwoPhasePacking alg{delta};
  LowerBoundCertificate cert = run_adversary(alg, delta);
  for (const auto& lv : cert.levels) {
    table.print_row(lv.level, lv.g.node_count(), lv.g.edge_count(), lv.c,
                    lv.g_weight.to_string(), lv.h_weight.to_string());
  }
  std::cout << "\nGraph sizes double per level (2-lifts); every level's\n"
               "witness weights disagree while the radius-i neighbourhoods\n"
               "are isomorphic — certified by the validator.\n";
}

void BM_SingleStep(benchmark::State& state) {
  const int delta = static_cast<int>(state.range(0));
  TwoPhasePacking alg{delta};
  // Pre-build the chain up to the penultimate level, then time one step.
  CertificateLevel lv = build_base_case(alg, delta, 2 * delta + 1);
  for (int i = 0; i + 2 <= delta - 2; ++i) {
    lv = adversary_step(alg, delta, lv);
  }
  for (auto _ : state) {
    CertificateLevel next = adversary_step(alg, delta, lv);
    benchmark::DoNotOptimize(next.level);
  }
  state.counters["nodes"] = lv.g.node_count() * 2;
}
BENCHMARK(BM_SingleStep)->DenseRange(4, 12, 2)->Unit(benchmark::kMillisecond);

void BM_UnfoldOnly(benchmark::State& state) {
  const int delta = 8;
  TwoPhasePacking alg{delta};
  LowerBoundCertificate cert = run_adversary(alg, delta);
  const auto& lv = cert.levels[static_cast<std::size_t>(state.range(0))];
  for (auto _ : state) {
    TwoLift gg = unfold_loop(lv.g, lv.g_loop);
    benchmark::DoNotOptimize(gg.graph.node_count());
  }
}
BENCHMARK(BM_UnfoldOnly)->DenseRange(0, 6, 2)->Unit(benchmark::kMicrosecond);

}  // namespace

LDLB_BENCH_MAIN(report)
