// Figure 3 — factor graphs and the loop conventions.
//
// Reproduction: (a) the exact shapes of Figure 3 — an EC graph whose factor
// graph has a half-loop (degree contribution 1) and a PO graph whose factor
// graph has a directed loop (degree contribution 2); (b) factor graph sizes
// of lifts (FG is invariant under lifting); (c) colour-refinement timing.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "ldlb/cover/factor_graph.hpp"
#include "ldlb/cover/lift.hpp"
#include "ldlb/cover/loopiness.hpp"
#include "ldlb/graph/edge_coloring.hpp"
#include "ldlb/graph/generators.hpp"
#include "ldlb/util/rng.hpp"

namespace {

using namespace ldlb;

void report() {
  bench::section("Figure 3: factor graphs and loop conventions");

  // EC example: path u - v - u' coloured 2,1... use the figure's spirit:
  // G = even cycle alternating colours -> FG = one node with two
  // half-loops; each half-loop counts once => degree 2, like the cycle.
  {
    Multigraph c(6);
    for (NodeId v = 0; v < 6; ++v) c.add_edge(v, (v + 1) % 6, v % 2);
    FactorGraph fg = factor_graph(c);
    std::cout << "EC: C6 with alternating colours -> FG nodes = "
              << fg.graph.node_count()
              << ", loops = " << fg.graph.loop_count(0)
              << ", degree(FG node) = " << fg.graph.degree(0)
              << "  (half-loops count once)\n";
  }
  // PO example: directed cycle -> FG = one node with a directed loop;
  // the loop counts twice => degree 2, matching the cycle's in+out.
  {
    Digraph c = make_directed_cycle(6);
    DiFactorGraph fg = factor_graph(c);
    std::cout << "PO: directed C6 -> FG nodes = " << fg.graph.node_count()
              << ", degree(FG node) = " << fg.graph.degree(0)
              << "  (directed loop counts twice)\n";
  }

  bench::section("FG is a lift invariant");
  bench::Table table{{"base_nodes", "lift_nodes", "FG_nodes", "loopiness"}};
  table.print_header();
  Rng rng{21};
  for (int k : {2, 4, 8}) {
    Multigraph g = make_loopy_tree(5, 5, rng);
    Lift lifted = involution_lift(g, std::max(k, 8));
    FactorGraph fg_base = factor_graph(g);
    FactorGraph fg_lift = factor_graph(lifted.graph);
    table.print_row(g.node_count(), lifted.graph.node_count(),
                    fg_lift.graph.node_count(), loopiness(lifted.graph));
    if (fg_base.graph.node_count() != fg_lift.graph.node_count()) {
      std::cout << "MISMATCH: lift changed the factor graph!\n";
    }
  }
}

void BM_FactorGraphRefinement(benchmark::State& state) {
  Rng rng{22};
  Multigraph g = greedy_edge_coloring(make_random_regular(
      static_cast<NodeId>(state.range(0)), 4, rng));
  for (auto _ : state) {
    FactorGraph fg = factor_graph(g);
    benchmark::DoNotOptimize(fg.graph.node_count());
  }
}
BENCHMARK(BM_FactorGraphRefinement)->Arg(64)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMicrosecond);

void BM_Loopiness(benchmark::State& state) {
  Rng rng{23};
  Multigraph g = make_loopy_tree(static_cast<NodeId>(state.range(0)), 8, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(loopiness(g));
  }
}
BENCHMARK(BM_Loopiness)->Arg(16)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

LDLB_BENCH_MAIN(report)
