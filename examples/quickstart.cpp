// Quickstart: compute a maximal fractional matching with the O(Δ)-round
// EC-model algorithm and verify it with the local checker.
//
//   $ ./quickstart
//
// Walks through the core API: build a graph, obtain a proper edge
// colouring, run a distributed algorithm under the synchronous LOCAL
// executor, and inspect the verified output.
#include <iostream>

#include "ldlb/graph/edge_coloring.hpp"
#include "ldlb/graph/generators.hpp"
#include "ldlb/local/simulator.hpp"
#include "ldlb/matching/checker.hpp"
#include "ldlb/matching/seq_color_packing.hpp"
#include "ldlb/util/rng.hpp"

int main() {
  using namespace ldlb;

  // 1. A random bounded-degree network.
  Rng rng{42};
  Multigraph g = make_random_bounded_degree(/*n=*/16, /*max_deg=*/4,
                                            /*density=*/0.9, rng);
  std::cout << "Network: " << g.node_count() << " nodes, " << g.edge_count()
            << " edges, max degree " << g.max_degree() << "\n";

  // 2. The EC model assumes a proper edge colouring with O(Δ) colours.
  Multigraph colored = greedy_edge_coloring(g);
  int k = colors_used(colored);
  std::cout << "Proper edge colouring with " << k << " colours\n";

  // 3. Run the O(Δ)-round maximal fractional matching algorithm — the
  //    upper bound whose optimality the paper (Theorem 1) establishes.
  SeqColorPacking algorithm{k};
  RunResult result = run_ec(colored, algorithm, /*max_rounds=*/k + 1);
  std::cout << "Algorithm '" << algorithm.name() << "' finished in "
            << result.rounds << " rounds, " << result.messages
            << " messages\n";

  // 4. Verify locally (maximal FM is locally checkable, Section 2).
  auto feasible = check_feasible(colored, result.matching);
  auto maximal = check_maximal(colored, result.matching);
  std::cout << "feasible: " << (feasible.ok ? "yes" : feasible.reason)
            << "\nmaximal:  " << (maximal.ok ? "yes" : maximal.reason) << "\n";

  // 5. Inspect the output.
  std::cout << "total weight: " << result.matching.total_weight() << "\n";
  std::cout << "non-zero edges:\n";
  for (EdgeId e = 0; e < colored.edge_count(); ++e) {
    if (!result.matching.weight(e).is_zero()) {
      const auto& ed = colored.edge(e);
      std::cout << "  {" << ed.u << "," << ed.v
                << "}  weight " << result.matching.weight(e) << "\n";
    }
  }
  return feasible.ok && maximal.ok ? 0 : 1;
}
