// The paper's Theorem 1 as an executable artefact: run the Section-4
// adversary against the O(Δ)-round algorithm and print the machine-checked
// certificate chain.
//
//   $ ./lower_bound_certificate [delta]     (default delta = 6)
//
// For each level i the pair (G_i, H_i) has isomorphic radius-i
// neighbourhoods around the witnesses yet the algorithm outputs different
// weights there — so the algorithm is not i-local. The chain reaches
// i = Δ-2: the algorithm needs at least Δ-1 rounds. Every claim printed
// here is re-verified by the independent validator at the end.
#include <cstdlib>
#include <iostream>

#include "ldlb/core/adversary.hpp"
#include "ldlb/cover/loopiness.hpp"
#include "ldlb/matching/two_phase_packing.hpp"
#include "ldlb/view/ball.hpp"
#include "ldlb/view/isomorphism.hpp"

int main(int argc, char** argv) {
  using namespace ldlb;
  const int delta = argc > 1 ? std::atoi(argv[1]) : 6;
  if (delta < 2 || delta > 16) {
    std::cerr << "delta must be in [2, 16]\n";
    return 2;
  }

  TwoPhasePacking algorithm{delta};
  std::cout << "Adversary (unfold & mix, Section 4) vs '" << algorithm.name()
            << "' at max degree Δ = " << delta << "\n\n";

  AdversaryOptions opts;
  opts.verify_p2 = delta <= 8;  // loopiness checks get pricey beyond that
  LowerBoundCertificate cert = run_adversary(algorithm, delta, opts);

  for (const auto& lv : cert.levels) {
    std::cout << "level " << lv.level << ": |G|=" << lv.g.node_count()
              << " |H|=" << lv.h.node_count() << "  witness colour " << lv.c
              << ", weights " << lv.g_weight << " vs " << lv.h_weight
              << "  (propagation walked " << lv.propagation_steps
              << " edges)\n";
    // Show the (P1) evidence explicitly for the first few levels.
    if (lv.level <= 2) {
      Ball bg = extract_ball(lv.g, lv.g_node, lv.level);
      Ball bh = extract_ball(lv.h, lv.h_node, lv.level);
      std::cout << "         τ_" << lv.level << " balls: " << bg.graph.node_count()
                << " nodes each, isomorphic: "
                << (balls_isomorphic(bg, bh) ? "yes" : "NO") << ", loopiness "
                << loopiness(lv.g) << "/" << loopiness(lv.h) << "\n";
    }
  }

  std::cout << "\ncertified radius: " << cert.certified_radius()
            << "  =>  '" << algorithm.name() << "' needs more than "
            << cert.certified_radius() << " rounds (Ω(Δ), Theorem 1)\n";

  bool valid = certificate_is_valid(cert, algorithm,
                                    /*check_loopiness=*/delta <= 8);
  std::cout << "independent validation: " << (valid ? "PASS" : "FAIL") << "\n";
  return valid ? 0 : 1;
}
