// Fault injection + guarded execution, end to end.
//
//   $ ./fault_injection_demo [seed]
//
// Runs the O(Δ)-round SeqColorPacking algorithm on a coloured cycle under a
// seed-driven FaultPlan, one fault class at a time, and shows how each
// injected fault surfaces through the guarded runner: as a typed model
// violation, a checker ViolationReport, or — in trap mode — a FaultInjected
// error naming the exact site. Re-running with the same seed reproduces
// every outcome bit for bit.
#include <cstdlib>
#include <iostream>

#include "ldlb/fault/fault_plan.hpp"
#include "ldlb/fault/guarded_run.hpp"
#include "ldlb/graph/edge_coloring.hpp"
#include "ldlb/graph/generators.hpp"
#include "ldlb/matching/seq_color_packing.hpp"

int main(int argc, char** argv) {
  using namespace ldlb;
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20140721;

  Multigraph g = greedy_edge_coloring(make_cycle(8));
  int k = 0;
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    k = std::max(k, g.edge(e).color + 1);
  }

  std::cout << "== clean baseline (seed " << seed << ") ==\n";
  {
    SeqColorPacking alg{k};
    GuardedRunOptions options;
    options.budget.max_rounds = k + 1;
    GuardedOutcome outcome = guarded_run_ec(g, alg, options);
    std::cout << "  " << outcome.classification() << " in "
              << outcome.run->rounds << " rounds, " << outcome.run->messages
              << " messages\n";
  }

  const FaultClass classes[] = {
      FaultClass::kCrashStop, FaultClass::kMessageDrop,
      FaultClass::kMessageCorrupt, FaultClass::kWeightPerturb,
      FaultClass::kPortPermute,
  };
  std::cout << "\n== one fault at a time ==\n";
  for (FaultClass kind : classes) {
    FaultSpec spec;
    switch (kind) {
      case FaultClass::kCrashStop: spec.crash_stops = 1; break;
      case FaultClass::kMessageDrop: spec.message_drops = 1; break;
      case FaultClass::kMessageCorrupt: spec.message_corruptions = 1; break;
      case FaultClass::kWeightPerturb: spec.weight_perturbations = 1; break;
      case FaultClass::kPortPermute: spec.port_permutations = 1; break;
    }
    FaultPlan plan{seed, spec};
    plan.bind(g);
    SeqColorPacking alg{k};
    GuardedRunOptions options;
    options.budget.max_rounds = k + 1;
    options.hooks = &plan;
    GuardedOutcome outcome = guarded_run_ec(g, alg, options);
    std::cout << "  " << plan.events()[0].to_string() << "\n    -> "
              << outcome.classification();
    if (!outcome.error.empty()) std::cout << ": " << outcome.error;
    if (outcome.status == RunStatus::kOk && !outcome.check.ok) {
      std::cout << ": " << outcome.check.reason;
    }
    if (outcome.ok()) {
      // Not an escape: the fault provably changed nothing this algorithm
      // said (e.g. rotating identical round-1 residuals), and the checker
      // confirmed the output is still a maximal FM.
      std::cout << " (benign: output unchanged and still maximal)";
    }
    std::cout << "\n";
  }

  std::cout << "\n== trap mode pinpoints the site ==\n";
  {
    FaultSpec spec;
    spec.message_drops = 1;
    spec.trap = true;
    FaultPlan plan{seed, spec};
    plan.bind(g);
    SeqColorPacking alg{k};
    GuardedRunOptions options;
    options.budget.max_rounds = k + 1;
    options.hooks = &plan;
    GuardedOutcome outcome = guarded_run_ec(g, alg, options);
    std::cout << "  " << outcome.classification() << ": " << outcome.error
              << "\n";
  }

  std::cout << "\nplan fingerprint (same seed => same plan, same outcome):\n";
  {
    FaultSpec spec;
    spec.crash_stops = spec.message_drops = 1;
    FaultPlan plan{seed, spec};
    plan.bind(g);
    std::cout << plan.describe();
  }
  return 0;
}
