// Bring-your-own-graph driver: read a graph file, run a chosen maximal-FM
// algorithm, verify, and optionally emit Graphviz with the weights.
//
//   $ ./custom_workload <graph-file> [seq|two|po] [--dot]
//
// Graph file format (see graph/graph_io.hpp):
//   multigraph <nodes> <edges>
//   e <u> <v> <colour>       (colour -1 = uncoloured; the tool colours
//                             uncoloured simple graphs with Misra–Gries)
//
// Example:
//   $ printf 'multigraph 3 2\ne 0 1 -1\ne 1 2 -1\n' > /tmp/p3.graph
//   $ ./custom_workload /tmp/p3.graph seq --dot
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "ldlb/core/sim_ec_po.hpp"
#include "ldlb/graph/dot_export.hpp"
#include "ldlb/graph/edge_coloring.hpp"
#include "ldlb/graph/graph_io.hpp"
#include "ldlb/graph/misra_gries.hpp"
#include "ldlb/local/simulator.hpp"
#include "ldlb/matching/checker.hpp"
#include "ldlb/matching/proposal_packing.hpp"
#include "ldlb/matching/seq_color_packing.hpp"
#include "ldlb/matching/two_phase_packing.hpp"

int main(int argc, char** argv) {
  using namespace ldlb;
  if (argc < 2) {
    std::cerr << "usage: custom_workload <graph-file> [seq|two|po] [--dot]\n";
    return 2;
  }
  const std::string algo = argc > 2 ? argv[2] : "seq";
  const bool want_dot = argc > 3 && std::string(argv[3]) == "--dot";

  std::ifstream in{argv[1]};
  if (!in) {
    std::cerr << "cannot open " << argv[1] << "\n";
    return 2;
  }
  Multigraph g = read_multigraph(in);

  // Colour if needed: Misra-Gries (Δ+1) for simple graphs, greedy (≤ 2Δ-1)
  // when loops/parallels are present.
  if (!g.has_proper_edge_coloring()) {
    g = g.is_simple() ? misra_gries_coloring(g) : greedy_edge_coloring(g);
    std::cerr << "coloured with " << colors_used(g) << " colours\n";
  }
  int k = 0;
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    k = std::max(k, g.edge(e).color + 1);
  }

  std::unique_ptr<EcAlgorithm> alg;
  std::unique_ptr<PoAlgorithm> inner;
  int budget = 0;
  if (algo == "seq") {
    alg = std::make_unique<SeqColorPacking>(k);
    budget = k + 1;
  } else if (algo == "two") {
    alg = std::make_unique<TwoPhasePacking>(k);
    budget = 2 * k + 1;
  } else if (algo == "po") {
    inner = std::make_unique<ProposalPacking>();
    alg = std::make_unique<EcFromPo>(*inner);
    budget = proposal_packing_round_budget(g.node_count(), 2 * g.edge_count());
  } else {
    std::cerr << "unknown algorithm '" << algo << "'\n";
    return 2;
  }

  RunResult r = run_ec(g, *alg, budget);
  auto check = check_maximal(g, r.matching);
  std::cerr << alg->name() << ": " << r.rounds << " rounds, " << r.messages
            << " messages (" << r.message_bytes << " bytes), weight "
            << r.matching.total_weight() << ", maximal: "
            << (check.ok ? "yes" : check.reason) << "\n";

  if (want_dot) {
    DotOptions opts;
    opts.matching = &r.matching;
    std::cout << to_dot(g, opts);
  } else {
    for (EdgeId e = 0; e < g.edge_count(); ++e) {
      const auto& ed = g.edge(e);
      std::cout << ed.u << " " << ed.v << " " << r.matching.weight(e) << "\n";
    }
  }
  return check.ok ? 0 : 1;
}
