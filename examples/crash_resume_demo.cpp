// Crash-safe checkpoint/resume, end to end.
//
//   $ ./crash_resume_demo [delta] [crash_level]
//
// 1. Runs the Section-4 adversary uninterrupted as the reference.
// 2. Runs it resumably with an injected crash-stop right after level
//    `crash_level` is checkpointed; the process "dies" with the snapshot
//    store holding levels 0..crash_level.
// 3. Corrupts the snapshot tail on purpose and shows the store degrading
//    to the longest valid prefix with a RecoveryReport.
// 4. Resumes: the loaded prefix is re-validated against the algorithm,
//    construction continues, and the final certificate is byte-identical
//    to the uninterrupted reference.
//
// Exits non-zero if any of that fails, so CI can smoke-run it.
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>

#include "ldlb/core/certificate_io.hpp"
#include "ldlb/recover/resumable_adversary.hpp"
#include "ldlb/recover/snapshot_store.hpp"
#include "ldlb/matching/seq_color_packing.hpp"
#include "ldlb/util/atomic_file.hpp"

int main(int argc, char** argv) {
  using namespace ldlb;
  const int delta = argc > 1 ? std::atoi(argv[1]) : 5;
  const int crash_level = argc > 2 ? std::atoi(argv[2]) : delta / 2;
  if (delta < 3 || crash_level < 0 || crash_level > delta - 2) {
    std::cerr << "usage: crash_resume_demo [delta>=3] [0<=crash_level<=delta-2]\n";
    return 2;
  }

  const std::string snap =
      (std::filesystem::temp_directory_path() / "ldlb_crash_resume_demo.snap")
          .string();
  SnapshotStore store{snap};
  store.remove();

  try {
    std::cout << "== reference: uninterrupted run (delta " << delta << ") ==\n";
    SeqColorPacking reference_alg{delta};
    LowerBoundCertificate reference = run_adversary(reference_alg, delta);
    const std::string reference_text = certificate_to_string(reference);
    std::cout << "  certified levels 0.." << reference.certified_radius()
              << " (" << reference_text.size() << " bytes)\n";

    std::cout << "\n== run with injected crash after level " << crash_level
              << " ==\n";
    {
      SeqColorPacking alg{delta};
      ResumeOptions options;
      options.on_checkpoint = crash_at_level(crash_level);
      try {
        run_adversary_resumable(alg, delta, store, options);
        std::cerr << "  BUG: the injected crash never fired\n";
        return 1;
      } catch (const FaultInjected& e) {
        std::cout << "  process died: " << e.what() << "\n";
      }
    }
    {
      RecoveryReport report;
      (void)store.load(&report);
      std::cout << "  " << report.to_string() << "\n";
    }

    std::cout << "\n== corrupting the snapshot tail ==\n";
    {
      std::string bytes = read_file(snap);
      // Chop into the last record's payload: strictly worse than the crash.
      write_file_atomic(snap, bytes.substr(0, bytes.size() * 3 / 4));
      RecoveryReport report;
      (void)store.load(&report);
      std::cout << "  " << report.to_string() << "\n";
    }

    std::cout << "\n== resume ==\n";
    SeqColorPacking alg{delta};
    ResumeInfo info;
    LowerBoundCertificate resumed =
        run_adversary_resumable(alg, delta, store, {}, &info);
    std::cout << "  salvaged " << info.loaded_levels << " level(s), trusted "
              << info.trusted_levels << " after re-validation, recomputed "
              << info.computed_levels << "\n";

    const bool identical = certificate_to_string(resumed) == reference_text;
    std::cout << "  final certificate byte-identical to reference: "
              << (identical ? "yes" : "NO") << "\n";
    store.remove();
    return identical ? 0 : 1;
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
