// Application: distributed 2-approximate vertex cover from maximal edge
// packing — the use case behind the O(Δ)-round algorithm [3, 4] whose
// optimality the paper proves.
//
//   $ ./vertex_cover_app [nodes] [max_degree]   (defaults 24, 5)
//
// Runs the EC packing, takes the saturated nodes as the cover, verifies
// coverage, and compares against the exact optimum (branch and bound).
#include <cstdlib>
#include <iostream>

#include "ldlb/graph/edge_coloring.hpp"
#include "ldlb/graph/generators.hpp"
#include "ldlb/local/simulator.hpp"
#include "ldlb/matching/seq_color_packing.hpp"
#include "ldlb/matching/vertex_cover.hpp"
#include "ldlb/util/rng.hpp"

int main(int argc, char** argv) {
  using namespace ldlb;
  const NodeId n = argc > 1 ? std::atoi(argv[1]) : 24;
  const int max_deg = argc > 2 ? std::atoi(argv[2]) : 5;
  if (n < 2 || n > 40 || max_deg < 1) {
    std::cerr << "usage: vertex_cover_app [nodes<=40] [max_degree]\n";
    return 2;
  }

  Rng rng{7};
  Multigraph g = make_random_bounded_degree(n, max_deg, 0.9, rng);
  Multigraph colored = greedy_edge_coloring(g);
  int k = colors_used(colored);
  std::cout << "Graph: " << n << " nodes, " << g.edge_count()
            << " edges, Δ = " << g.max_degree() << ", " << k << " colours\n";

  SeqColorPacking alg{k};
  RunResult run = run_ec(colored, alg, k + 1);
  std::cout << "Maximal edge packing computed in " << run.rounds
            << " rounds (weight " << run.matching.total_weight() << ")\n";

  auto cover = vertex_cover_from_packing(colored, run.matching);
  bool covers = is_vertex_cover(colored, cover);
  int opt = min_vertex_cover_size(g);
  std::cout << "Saturated nodes form a vertex cover: "
            << (covers ? "yes" : "NO") << "\n";
  std::cout << "cover size " << cover.size() << " vs optimum " << opt
            << "  (ratio "
            << (opt == 0 ? 1.0 : static_cast<double>(cover.size()) / opt)
            << ", guarantee <= 2)\n";
  std::cout << "cover nodes:";
  for (NodeId v : cover) std::cout << " " << v;
  std::cout << "\n";

  std::cout << "\nTheorem 1's message: the " << run.rounds
            << "-round packing above is asymptotically optimal — no o(Δ)\n"
               "algorithm can produce it, in any of the four models.\n";
  return covers && static_cast<int>(cover.size()) <= 2 * opt ? 0 : 1;
}
