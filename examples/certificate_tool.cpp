// Certificate tool: generate, validate, convert, inspect, and render
// lower-bound certificates from the command line.
//
//   $ ./certificate_tool generate <delta> <seq|two|po> <out-file>
//   $ ./certificate_tool generate --log <delta> <seq|two|po> <out-log>
//   $ ./certificate_tool validate <delta> <seq|two|po> <in-file>
//   $ ./certificate_tool verify --stream <delta> <seq|two|po> <in-log>
//   $ ./certificate_tool convert <in> <out>      (format auto-detected)
//   $ ./certificate_tool inspect <in-log>        (checksum-chain dump)
//   $ ./certificate_tool dot <in-file> <level>   (DOT to stdout)
//
// `generate` runs the Section-4 adversary against the chosen algorithm and
// writes either the classic one-shot certificate text or (--log) the
// append-only streaming certificate log (recover/cert_log). `validate`
// reloads a classic certificate fully resident and re-verifies every level;
// `verify --stream` does the same against a certificate log while holding
// O(one level) in memory — both report peak_rss_kb so the CI stage can pin
// the streaming validator's footprint below the resident one. `convert`
// translates between the two formats by sniffing the input's magic line;
// `inspect` dumps the log's per-record geometry and checksum chain and
// classifies any damage; `dot` renders one level's pair (G_i, H_i) as
// Graphviz source with the witness nodes highlighted.
//
// --inject <op>:<mode>:<nth> arms a one-shot environment fault (fail the
// nth write/fsync/rename/dir-fsync/truncate/read as eio/enospc/short-write)
// before the verb runs; an injected IoError exits 5 so CI can tell an
// injected fault from a real failure.
#include <sys/resource.h>

#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "ldlb/core/adversary.hpp"
#include "ldlb/core/certificate_io.hpp"
#include "ldlb/core/sim_ec_po.hpp"
#include "ldlb/fault/env_fault.hpp"
#include "ldlb/graph/dot_export.hpp"
#include "ldlb/matching/proposal_packing.hpp"
#include "ldlb/matching/seq_color_packing.hpp"
#include "ldlb/matching/two_phase_packing.hpp"
#include "ldlb/recover/cert_log.hpp"
#include "ldlb/util/checksum.hpp"

namespace {

using namespace ldlb;

struct Subject {
  std::unique_ptr<EcAlgorithm> alg;
  std::unique_ptr<PoAlgorithm> inner;
};

Subject make_subject(const std::string& kind, int delta) {
  Subject s;
  if (kind == "seq") {
    s.alg = std::make_unique<SeqColorPacking>(delta);
  } else if (kind == "two") {
    s.alg = std::make_unique<TwoPhasePacking>(delta);
  } else if (kind == "po") {
    auto po = std::make_unique<ProposalPacking>();
    s.alg = std::make_unique<EcFromPo>(*po);
    s.inner = std::move(po);
  }
  return s;
}

int usage() {
  std::cerr << "usage:\n"
               "  certificate_tool generate [--log] <delta> <seq|two|po> "
               "<out>\n"
               "  certificate_tool validate <delta> <seq|two|po> <in>\n"
               "  certificate_tool verify --stream <delta> <seq|two|po> "
               "<in-log>\n"
               "  certificate_tool convert <in> <out>\n"
               "  certificate_tool inspect <in-log>\n"
               "  certificate_tool dot <in> <level>\n"
               "options:\n"
               "  --inject <op>:<mode>:<nth>  arm a one-shot filesystem "
               "fault\n"
               "      op: write|fsync|rename|dir-fsync|truncate|read\n"
               "      mode: eio|enospc|short-write   (exit 5 when it "
               "fires)\n";
  return 2;
}

// ru_maxrss: peak resident set of this process, in KiB on Linux.
long peak_rss_kb() {
  struct rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return usage.ru_maxrss;
}

// First line of `path` ("" when unreadable) — enough to tell the two
// formats apart by their magic.
std::string sniff_first_line(const std::string& path) {
  std::ifstream in{path};
  std::string line;
  std::getline(in, line);
  return line;
}

// "<op>:<mode>:<nth>" -> armed plan; false on malformed spec.
bool arm_injection(EnvFaultPlan& plan, const std::string& spec) {
  const std::size_t c1 = spec.find(':');
  const std::size_t c2 = c1 == std::string::npos ? c1 : spec.find(':', c1 + 1);
  if (c2 == std::string::npos) return false;
  FsOp op{};
  EnvFaultMode mode{};
  if (!fs_op_from_string(spec.substr(0, c1), op)) return false;
  if (!env_fault_mode_from_string(spec.substr(c1 + 1, c2 - c1 - 1), mode)) {
    return false;
  }
  const int nth = std::atoi(spec.c_str() + c2 + 1);
  if (nth < 1) return false;
  plan.arm(op, mode, nth);
  return true;
}

int run_generate(int delta, const std::string& kind, const std::string& out,
                 bool as_log) {
  Subject s = make_subject(kind, delta);
  if (!s.alg || delta < 2 || delta > 24) return usage();
  AdversaryOptions opts;
  opts.max_rounds = 40000;
  LowerBoundCertificate cert = run_adversary(*s.alg, delta, opts);
  if (as_log) {
    // The log is built the way a resumable run would build it: record by
    // record through the audited append path.
    CertificateLog log{out};
    log.remove();
    log.checkpoint(cert);
    std::cout << "wrote certificate log: delta=" << delta << ", levels 0.."
              << cert.certified_radius() << ", algorithm '"
              << cert.algorithm_name << "'\n";
  } else {
    // Atomic replace: a crash (or full disk) mid-write cannot leave a
    // torn certificate behind.
    write_certificate_file(out, cert);
    std::cout << "wrote certificate: delta=" << delta << ", levels 0.."
              << cert.certified_radius() << ", algorithm '"
              << cert.algorithm_name << "'\n";
  }
  return 0;
}

int run_validate(int delta, const std::string& kind, const std::string& in) {
  Subject s = make_subject(kind, delta);
  if (!s.alg) return usage();
  LowerBoundCertificate cert = read_certificate_file(in);
  if (cert.delta != delta) {
    std::cerr << "certificate is for delta=" << cert.delta << "\n";
    return 1;
  }
  auto validations = validate_certificate(cert, *s.alg,
                                          /*check_loopiness=*/delta <= 8);
  bool all_ok = true;
  for (const auto& v : validations) {
    std::cout << "level " << v.level << ": " << (v.ok() ? "OK" : "INVALID")
              << "\n";
    all_ok = all_ok && v.ok();
  }
  std::cout << (all_ok ? "certificate VALID" : "certificate INVALID")
            << " — algorithm needs more than " << cert.certified_radius()
            << " rounds\n";
  std::cout << "peak_rss_kb=" << peak_rss_kb() << "\n";
  return all_ok ? 0 : 1;
}

int run_verify_stream(int delta, const std::string& kind,
                      const std::string& in) {
  Subject s = make_subject(kind, delta);
  if (!s.alg) return usage();
  const CertLogValidation v = validate_certificate_log(
      in, *s.alg, /*check_loopiness=*/delta <= 8,
      [](const LevelValidation& lv) {
        std::cout << "level " << lv.level << ": "
                  << (lv.ok() ? "OK" : "INVALID") << "\n";
      });
  if (v.log.damage != LogDamage::kNone) {
    std::cerr << v.log.to_string() << "\n";
  }
  if (v.delta != 0 && v.delta != delta) {
    std::cerr << "certificate log is for delta=" << v.delta << "\n";
    return 1;
  }
  std::cout << (v.ok() ? "certificate VALID" : "certificate INVALID");
  if (v.ok()) {
    std::cout << " — algorithm needs more than " << v.levels_checked - 1
              << " rounds";
  }
  std::cout << "\n"
            << "levels_checked=" << v.levels_checked
            << " chain_complete=" << (v.chain_complete ? 1 : 0) << "\n";
  std::cout << "peak_rss_kb=" << peak_rss_kb() << "\n";
  return v.ok() ? 0 : 1;
}

int run_convert(const std::string& in, const std::string& out) {
  const std::string magic = sniff_first_line(in);
  if (magic == "ldlb-cert-log 1") {
    // log -> classic one-shot certificate.
    CertificateLog log{in};
    RecoveryReport report;
    LowerBoundCertificate cert = log.load(&report);
    if (!report.complete || cert.levels.empty()) {
      std::cerr << "cannot convert: " << report.to_string() << "\n";
      return 1;
    }
    write_certificate_file(out, cert);
    std::cout << "converted log -> certificate: delta=" << cert.delta
              << ", levels 0.." << cert.certified_radius() << "\n";
    return 0;
  }
  if (magic == "ldlb-certificate 1") {
    // classic -> append-only log, record by record.
    LowerBoundCertificate cert = read_certificate_file(in);
    CertificateLog log{out};
    log.remove();
    log.checkpoint(cert);
    std::cout << "converted certificate -> log: delta=" << cert.delta
              << ", levels 0.." << cert.certified_radius() << "\n";
    return 0;
  }
  std::cerr << "unrecognised input format (magic line '" << magic << "')\n";
  return 1;
}

int run_inspect(const std::string& in) {
  std::cout << "record  lines  bytes  offset  self  chain\n";
  const CertLogReport report = inspect_certificate_log(
      in, [](const CertLogRecordInfo& rec) {
        std::cout << rec.index << "  " << rec.payload_lines << "  "
                  << rec.payload_bytes << "  " << rec.offset << "  "
                  << checksum_to_hex(rec.self) << "  "
                  << checksum_to_hex(rec.chain) << "\n";
      });
  std::cout << report.to_string() << "\n";
  return report.damage == LogDamage::kNone ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  // Split flags from positionals so `--inject` works with every verb.
  std::vector<std::string> args;
  std::string inject_spec;
  bool as_log = false;
  bool stream = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--inject") {
      if (i + 1 >= argc) return usage();
      inject_spec = argv[++i];
    } else if (arg == "--log") {
      as_log = true;
    } else if (arg == "--stream") {
      stream = true;
    } else {
      args.push_back(arg);
    }
  }
  if (args.size() < 2) return usage();
  const std::string mode = args[0];

  EnvFaultPlan plan;
  if (!inject_spec.empty() && !arm_injection(plan, inject_spec)) {
    std::cerr << "malformed --inject '" << inject_spec << "'\n";
    return usage();
  }
  ScopedFsFaultInjection injection{inject_spec.empty() ? nullptr : &plan};

  try {
    if (mode == "generate" && args.size() == 4) {
      return run_generate(std::atoi(args[1].c_str()), args[2], args[3],
                          as_log);
    }
    if (mode == "validate" && args.size() == 4 && !stream) {
      return run_validate(std::atoi(args[1].c_str()), args[2], args[3]);
    }
    if (mode == "verify" && args.size() == 4 && stream) {
      return run_verify_stream(std::atoi(args[1].c_str()), args[2], args[3]);
    }
    if (mode == "convert" && args.size() == 3) {
      return run_convert(args[1], args[2]);
    }
    if (mode == "inspect" && args.size() == 2) {
      return run_inspect(args[1]);
    }
    if (mode == "dot" && args.size() == 3) {
      std::ifstream in{args[1]};
      LowerBoundCertificate cert = read_certificate(in);
      const int level = std::atoi(args[2].c_str());
      if (level < 0 || level >= static_cast<int>(cert.levels.size())) {
        std::cerr << "level out of range (0.." << cert.levels.size() - 1
                  << ")\n";
        return 1;
      }
      const auto& lv = cert.levels[static_cast<std::size_t>(level)];
      DotOptions g_opts;
      g_opts.name = "G" + std::to_string(level);
      g_opts.highlight = lv.g_node;
      DotOptions h_opts;
      h_opts.name = "H" + std::to_string(level);
      h_opts.highlight = lv.h_node;
      std::cout << to_dot(lv.g, g_opts) << "\n" << to_dot(lv.h, h_opts);
      return 0;
    }
  } catch (const IoError& e) {
    // Exit 5 distinguishes an (injected or real) environment fault from a
    // semantic failure — scripts/ci.sh pins the injected paths on it.
    std::cerr << "io error: " << e.what() << "\n";
    return 5;
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
