// Certificate tool: generate, validate, and render lower-bound
// certificates from the command line.
//
//   $ ./certificate_tool generate <delta> <seq|two|po> <out-file>
//   $ ./certificate_tool validate <delta> <seq|two|po> <in-file>
//   $ ./certificate_tool dot      <in-file> <level>        (DOT to stdout)
//
// `generate` runs the Section-4 adversary against the chosen algorithm and
// writes the certificate in the ldlb text format; `validate` reloads it
// and re-verifies every level from scratch against a fresh instance of the
// algorithm; `dot` renders one level's pair (G_i, H_i) as Graphviz source
// with the witness nodes highlighted.
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "ldlb/core/adversary.hpp"
#include "ldlb/core/certificate_io.hpp"
#include "ldlb/core/sim_ec_po.hpp"
#include "ldlb/graph/dot_export.hpp"
#include "ldlb/matching/proposal_packing.hpp"
#include "ldlb/matching/seq_color_packing.hpp"
#include "ldlb/matching/two_phase_packing.hpp"

namespace {

using namespace ldlb;

struct Subject {
  std::unique_ptr<EcAlgorithm> alg;
  std::unique_ptr<PoAlgorithm> inner;
};

Subject make_subject(const std::string& kind, int delta) {
  Subject s;
  if (kind == "seq") {
    s.alg = std::make_unique<SeqColorPacking>(delta);
  } else if (kind == "two") {
    s.alg = std::make_unique<TwoPhasePacking>(delta);
  } else if (kind == "po") {
    auto po = std::make_unique<ProposalPacking>();
    s.alg = std::make_unique<EcFromPo>(*po);
    s.inner = std::move(po);
  }
  return s;
}

int usage() {
  std::cerr << "usage:\n"
               "  certificate_tool generate <delta> <seq|two|po> <out>\n"
               "  certificate_tool validate <delta> <seq|two|po> <in>\n"
               "  certificate_tool dot <in> <level>\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string mode = argv[1];

  try {
    if (mode == "generate" && argc == 5) {
      int delta = std::atoi(argv[2]);
      Subject s = make_subject(argv[3], delta);
      if (!s.alg || delta < 2 || delta > 16) return usage();
      AdversaryOptions opts;
      opts.max_rounds = 40000;
      LowerBoundCertificate cert = run_adversary(*s.alg, delta, opts);
      // Atomic replace: a crash (or full disk) mid-write cannot leave a
      // torn certificate behind.
      write_certificate_file(argv[4], cert);
      std::cout << "wrote certificate: delta=" << delta << ", levels 0.."
                << cert.certified_radius() << ", algorithm '"
                << cert.algorithm_name << "'\n";
      return 0;
    }
    if (mode == "validate" && argc == 5) {
      int delta = std::atoi(argv[2]);
      Subject s = make_subject(argv[3], delta);
      if (!s.alg) return usage();
      LowerBoundCertificate cert = read_certificate_file(argv[4]);
      if (cert.delta != delta) {
        std::cerr << "certificate is for delta=" << cert.delta << "\n";
        return 1;
      }
      auto validations = validate_certificate(cert, *s.alg,
                                              /*check_loopiness=*/delta <= 8);
      bool all_ok = true;
      for (const auto& v : validations) {
        std::cout << "level " << v.level << ": "
                  << (v.ok() ? "OK" : "INVALID") << "\n";
        all_ok = all_ok && v.ok();
      }
      std::cout << (all_ok ? "certificate VALID" : "certificate INVALID")
                << " — algorithm needs more than " << cert.certified_radius()
                << " rounds\n";
      return all_ok ? 0 : 1;
    }
    if (mode == "dot" && argc == 4) {
      std::ifstream in{argv[2]};
      LowerBoundCertificate cert = read_certificate(in);
      int level = std::atoi(argv[3]);
      if (level < 0 || level >= static_cast<int>(cert.levels.size())) {
        std::cerr << "level out of range (0.." << cert.levels.size() - 1
                  << ")\n";
        return 1;
      }
      const auto& lv = cert.levels[static_cast<std::size_t>(level)];
      DotOptions g_opts;
      g_opts.name = "G" + std::to_string(level);
      g_opts.highlight = lv.g_node;
      DotOptions h_opts;
      h_opts.name = "H" + std::to_string(level);
      h_opts.highlight = lv.h_node;
      std::cout << to_dot(lv.g, g_opts) << "\n" << to_dot(lv.h, h_opts);
      return 0;
    }
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
