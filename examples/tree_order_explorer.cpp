// Explorer for the homogeneous order on the infinite coloured tree
// (Appendix A, Figure 10).
//
//   $ ./tree_order_explorer [colours] [radius]    (defaults 2, 3)
//
// Enumerates the radius-r ball of the 2d-regular d-coloured tree T around
// the origin, sorts it by the bracket order ≺, and prints each node's
// coordinate, its ⟦origin→x⟧ value, and its rank — then demonstrates
// homogeneity by re-sorting the same ball around a translated origin.
#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "ldlb/order/tree_order.hpp"

namespace {

using namespace ldlb;
using order::bracket;
using order::concat;
using order::Letter;
using order::step;
using order::TreeCoord;
using order::tree_less;

// All nodes of T within distance r of the origin.
std::vector<TreeCoord> ball(int d, int r) {
  std::vector<TreeCoord> out{{}};
  std::size_t level_start = 0;
  for (int depth = 0; depth < r; ++depth) {
    std::size_t level_end = out.size();
    for (std::size_t i = level_start; i < level_end; ++i) {
      for (int c = 1; c <= d; ++c) {
        for (Letter l : {static_cast<Letter>(c), static_cast<Letter>(-c)}) {
          TreeCoord next = step(out[i], l);
          if (next.size() > out[i].size()) out.push_back(next);
        }
      }
    }
    level_start = level_end;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const int d = argc > 1 ? std::atoi(argv[1]) : 2;
  const int r = argc > 2 ? std::atoi(argv[2]) : 3;
  if (d < 1 || d > 4 || r < 1 || r > 6) {
    std::cerr << "usage: tree_order_explorer [colours 1..4] [radius 1..6]\n";
    return 2;
  }

  std::vector<TreeCoord> nodes = ball(d, r);
  std::cout << "T: " << 2 * d << "-regular, " << d
            << " colours; radius-" << r << " ball has " << nodes.size()
            << " nodes\n\n";

  std::sort(nodes.begin(), nodes.end(),
            [](const TreeCoord& a, const TreeCoord& b) {
              return a != b && tree_less(a, b);
            });

  std::cout << "rank  ⟦e→x⟧  coordinate\n";
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    std::cout.width(4);
    std::cout << i << "  ";
    std::cout.width(6);
    std::cout << bracket({}, nodes[i]) << "  " << order::to_string(nodes[i])
              << "\n";
  }

  // Homogeneity (Lemma 4): translate the whole ball by a fixed word and
  // confirm the order is preserved.
  TreeCoord shift{1, 2, -1};
  bool preserved = true;
  for (std::size_t i = 0; i + 1 < nodes.size(); ++i) {
    if (!tree_less(concat(shift, nodes[i]), concat(shift, nodes[i + 1]))) {
      preserved = false;
    }
  }
  std::cout << "\nLemma 4 check: order preserved under translation by "
            << order::to_string(shift) << ": " << (preserved ? "yes" : "NO")
            << "\n";
  return preserved ? 0 : 1;
}
