// The Section-5 simulation chain EC ⇐ PO ⇐ OI ⇐ ID, end to end.
//
//   $ ./simulation_pipeline
//
// Demonstrates, at small scale, every link the paper uses to transport the
// EC lower bound up to the full LOCAL model:
//
//   ID ⇒ OI (§5.4): a correct but order-*sensitive* ID algorithm breaks
//        the chain with a naive identifier pool and works with a
//        parity-homogeneous pool — the kind of set the Naor–Stockmeyer
//        Ramsey extraction finds;
//   OI ⇒ PO (§5.3): the order-invariant algorithm runs on PO graphs
//        through the canonically ordered universal cover (Lemma 4);
//   PO ⇒ EC (§5.1): the PO proposal algorithm runs on EC graphs through
//        the arc-doubling wrapper, and the Section-4 adversary then defeats
//        it — closing the loop of §5.5.
#include <iostream>

#include "ldlb/core/adversary.hpp"
#include "ldlb/core/sim_ec_po.hpp"
#include "ldlb/core/sim_oi_id.hpp"
#include "ldlb/core/sim_po_oi.hpp"
#include "ldlb/graph/generators.hpp"
#include "ldlb/local/po_full_info.hpp"
#include "ldlb/matching/checker.hpp"
#include "ldlb/matching/id_packing.hpp"
#include "ldlb/matching/proposal_packing.hpp"

int main() {
  using namespace ldlb;

  std::cout << "== ID => OI (Section 5.4: tricky identifiers) ==\n";
  ParityQuirkPacking id_alg{4};
  Digraph loopy(2);
  loopy.add_arc(0, 1, 0);
  loopy.add_arc(0, 0, 1);
  loopy.add_arc(1, 1, 1);
  {
    std::vector<std::uint64_t> naive;
    for (std::uint64_t i = 0; i < 20000; ++i) naive.push_back(i);
    IdAsOi broken{id_alg, naive};
    try {
      simulate_oi_on_po(loopy, broken);
      std::cout << "naive id pool: unexpectedly consistent\n";
    } catch (const Error&) {
      std::cout << "naive id pool: views disagree — the algorithm's output\n"
                   "  depends on identifier *values*, not just their order\n";
    }
  }
  {
    std::vector<std::uint64_t> even;
    for (std::uint64_t i = 0; i < 20000; ++i) even.push_back(2 * i);
    IdAsOi fixed{id_alg, even};
    FractionalMatching y = simulate_oi_on_po(loopy, fixed);
    std::cout << "Ramsey-style pool (all even ids): chain completes, "
              << "maximal: " << (check_maximal(loopy, y).ok ? "yes" : "NO")
              << "\n";
  }

  std::cout << "\n== OI => PO (Section 5.3: canonical order on UG) ==\n";
  {
    Digraph cycle = make_directed_cycle(8);
    RankSeededPacking aoi{4};
    FractionalMatching y = simulate_oi_on_po(cycle, aoi);
    std::cout << "order-invariant algorithm on a directed 8-cycle via "
              << "(UG, ≺): maximal: "
              << (check_maximal(cycle, y).ok ? "yes" : "NO") << "\n";
  }

  std::cout << "\n== PO => EC (Section 5.1) and the adversary (§5.5) ==\n";
  {
    ProposalPacking po;
    EcFromPo ec_alg{po};
    AdversaryOptions opts;
    opts.max_rounds = 20000;
    const int delta = 5;
    LowerBoundCertificate cert = run_adversary(ec_alg, delta, opts);
    std::cout << "adversary vs simulated PO algorithm at Δ = " << delta
              << ": certified radius " << cert.certified_radius()
              << " (= Δ-2), valid: "
              << (certificate_is_valid(cert, ec_alg, false) ? "yes" : "NO")
              << "\n";
  }

  std::cout << "\n== The whole of §5.5 in one run ==\n";
  {
    // ID algorithm -> IdAsOi -> PoFromOi -> EcFromPo -> adversary.
    std::vector<std::uint64_t> pool;
    for (std::uint64_t i = 0; i < 400000; ++i) pool.push_back(i);
    RankPackingId rank_alg{2};
    IdAsOi oi{rank_alg, pool};
    PoFromOi po_alg{oi};
    EcFromPo ec_alg{po_alg};
    AdversaryOptions opts;
    opts.max_rounds = 100;
    LowerBoundCertificate cert = run_adversary(ec_alg, 3, opts);
    std::cout << "ID algorithm '" << rank_alg.name()
              << "' transported through OI, PO and EC; adversary certifies "
              << "radius " << cert.certified_radius() << " at Δ = 3, valid: "
              << (certificate_is_valid(cert, ec_alg, false) ? "yes" : "NO")
              << "\n";
  }

  std::cout << "\nConclusion (the paper's §5.5): a fast algorithm in ANY of\n"
               "the four models would yield a fast EC algorithm — which the\n"
               "Section-4 adversary rules out. Hence Ω(Δ) in full LOCAL.\n";
  return 0;
}
