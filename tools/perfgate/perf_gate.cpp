// Perf-regression gate for CI (scripts/ci.sh).
//
// Measures the min-of-N wall time of the full Δ-adversary chain plus
// certificate validation — the hot path the canonical ball engine
// (view/ball_store) accelerates — and compares it against a checked-in
// baseline. Exits nonzero when the measured time regresses past the
// allowed factor, so an accidental reintroduction of the exponential
// isomorphism path fails CI in seconds instead of rotting silently.
// Min-of-N because single-shot wall times on shared CI machines jitter
// by 10-20%; the minimum is the stable statistic of a deterministic
// computation.
//
// Usage:
//   ldlb_perf_gate <baseline-file> [--delta N] [--reps N] [--factor F]
//   ldlb_perf_gate --measure [--delta N] [--reps N]
//
// The baseline file holds one number: the reference min wall time in
// milliseconds (regenerate with --measure on a quiet machine). The gate
// fails when measured > factor * baseline (default factor 2.0).
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "ldlb/core/adversary.hpp"
#include "ldlb/core/certificate.hpp"
#include "ldlb/matching/seq_color_packing.hpp"
#include "ldlb/view/isomorphism.hpp"

namespace {

double run_once_ms(int delta) {
  ldlb::clear_ball_encoding_cache();  // cold cache, like a fresh process
  ldlb::SeqColorPacking alg{delta};
  const auto t0 = std::chrono::steady_clock::now();
  ldlb::LowerBoundCertificate cert = ldlb::run_adversary(alg, delta);
  const bool valid =
      ldlb::certificate_is_valid(cert, alg, /*check_loopiness=*/false);
  const auto t1 = std::chrono::steady_clock::now();
  if (!valid || cert.certified_radius() != delta - 2) {
    std::cerr << "perf gate: delta " << delta
              << " certificate invalid — timing is meaningless\n";
    std::exit(2);
  }
  return std::chrono::duration_cast<
             std::chrono::duration<double, std::milli>>(t1 - t0)
      .count();
}

int usage() {
  std::cerr << "usage: ldlb_perf_gate <baseline-file> [--delta N] [--reps N]"
               " [--factor F]\n"
               "       ldlb_perf_gate --measure [--delta N] [--reps N]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_file;
  bool measure = false;
  int delta = 12;
  int reps = 3;
  double factor = 2.0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--measure") {
      measure = true;
    } else if (arg == "--delta" && i + 1 < argc) {
      delta = std::atoi(argv[++i]);
    } else if (arg == "--reps" && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
    } else if (arg == "--factor" && i + 1 < argc) {
      factor = std::atof(argv[++i]);
    } else if (baseline_file.empty() && arg[0] != '-') {
      baseline_file = arg;
    } else {
      return usage();
    }
  }
  if (delta < 3 || reps < 1 || factor <= 0) return usage();
  if (!measure && baseline_file.empty()) return usage();

  double best = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    const double ms = run_once_ms(delta);
    if (rep == 0 || ms < best) best = ms;
  }

  if (measure) {
    std::cout << best << "\n";
    return 0;
  }

  std::ifstream in(baseline_file);
  double baseline = 0.0;
  if (!(in >> baseline) || baseline <= 0) {
    std::cerr << "perf gate: cannot read baseline from " << baseline_file
              << "\n";
    return 2;
  }
  std::cout << "perf gate: delta " << delta << " adversary+validate min-of-"
            << reps << " = " << best << " ms (baseline " << baseline
            << " ms, tolerance " << factor << "x)\n";
  if (best > factor * baseline) {
    std::cerr << "perf gate: REGRESSION — " << best << " ms exceeds "
              << factor << " x " << baseline << " ms; the canonical ball "
              << "engine's speedup has been lost (see docs/PERFORMANCE.md)\n";
    return 1;
  }
  return 0;
}
