// ldlb_lint — in-tree invariant linter.
//
// The paper's lower-bound certificates are compared byte for byte (the
// (G_i, H_i) witness sequences of Section 4), so the repo's reproducibility
// invariants — durable writes only via util/atomic_file, no hidden
// nondeterminism in the proof-bearing layers, raw concurrency confined to
// the audited utilities — must not regress silently. This linter is the
// static gate in front of the sanitizer/chaos stages: the shared
// tools/srcmodel lexer strips comments, string literals, character
// literals, and raw strings (preserving line structure), then named
// pattern rules run over the stripped text and report file:line
// diagnostics. Cross-file invariants (include layering, call-graph taint,
// lock discipline) live in the companion analyzer, tools/analyze.
//
// Suppressions: a site that legitimately breaks a rule carries
//
//   // ldlb-lint: allow(<rule>): <reason>
//
// either trailing the offending line or on a comment line directly above
// it (intervening comment-only lines are fine). The reason is mandatory.
// A suppression that stops matching anything is itself reported
// (stale-suppression), so annotations cannot outlive the code they excuse.
//
// Rule catalogue, scopes, and how to add a rule: docs/STATIC_ANALYSIS.md.
#pragma once

#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

#include "srcmodel.hpp"

namespace ldlb::lint {

// The lexer, diagnostic shape, and suppression grammar are the shared
// source model; lint adds only its rule table and marker ("ldlb-lint").
using srcmodel::Annotation;
using srcmodel::Comment;
using srcmodel::Diagnostic;
using srcmodel::Stripped;
using srcmodel::format;
using srcmodel::strip_source;

/// Extracts `ldlb-lint: allow(<rule>): <reason>` annotations from
/// `stripped.comments`. Malformed annotations (missing reason) and unknown
/// rule names are reported into `out` as bad-annotation / unknown-rule
/// diagnostics and dropped.
[[nodiscard]] std::vector<Annotation> parse_annotations(
    const Stripped& stripped, const std::string& path,
    std::vector<Diagnostic>& out);

/// Names of all enforceable rules, for allow() validation and --list-rules.
[[nodiscard]] const std::vector<std::string>& rule_names();

/// Lints one file. `rel_path` is the path relative to the repo root
/// (e.g. "src/ldlb/core/adversary.cpp"); rule scoping keys off it.
[[nodiscard]] std::vector<Diagnostic> lint_file(const std::string& rel_path,
                                               std::string_view content);

/// Lints every .hpp/.cpp under <root>/src/ldlb, sorted by path so output
/// is deterministic. Throws std::runtime_error if the tree is missing.
[[nodiscard]] std::vector<Diagnostic> lint_tree(
    const std::filesystem::path& root);

/// Lints an explicit list of files, each given relative to `root`.
[[nodiscard]] std::vector<Diagnostic> lint_files(
    const std::filesystem::path& root,
    const std::vector<std::string>& rel_paths);

}  // namespace ldlb::lint
