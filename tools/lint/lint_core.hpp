// ldlb_lint — in-tree invariant linter.
//
// The paper's lower-bound certificates are compared byte for byte (the
// (G_i, H_i) witness sequences of Section 4), so the repo's reproducibility
// invariants — durable writes only via util/atomic_file, no hidden
// nondeterminism in the proof-bearing layers, raw concurrency confined to
// the audited utilities — must not regress silently. This linter is the
// static gate in front of the sanitizer/chaos stages: a lightweight C++
// lexer strips comments, string literals, character literals, and raw
// strings (preserving line structure), then named pattern rules run over
// the stripped text and report file:line diagnostics.
//
// Suppressions: a site that legitimately breaks a rule carries
//
//   // ldlb-lint: allow(<rule>): <reason>
//
// either trailing the offending line or on a comment line directly above
// it (intervening comment-only lines are fine). The reason is mandatory.
// A suppression that stops matching anything is itself reported
// (stale-suppression), so annotations cannot outlive the code they excuse.
//
// Rule catalogue, scopes, and how to add a rule: docs/STATIC_ANALYSIS.md.
#pragma once

#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

namespace ldlb::lint {

struct Diagnostic {
  std::string path;  // repo-root-relative, forward slashes
  int line = 0;
  std::string rule;
  std::string message;
};

/// "path:line: [rule] message" — the exact format tests assert on.
[[nodiscard]] std::string format(const Diagnostic& d);

/// One comment found while stripping; `code_before` is true when the line
/// carries code before the comment starts (trailing-comment position).
struct Comment {
  int line = 0;
  bool code_before = false;
  std::string text;
};

/// Source with comments and literal *contents* blanked to spaces. Line
/// structure is preserved exactly, so pattern hits report real lines.
struct Stripped {
  std::string text;
  std::vector<Comment> comments;
};

[[nodiscard]] Stripped strip_source(std::string_view source);

/// A parsed `ldlb-lint: allow(<rule>): <reason>` annotation.
struct Annotation {
  int line = 0;         // line of the comment itself
  int target_line = 0;  // line it suppresses (0 when no code line follows)
  std::string rule;
  std::string reason;
  bool used = false;  // set when it suppressed at least one diagnostic
};

/// Extracts annotations from `stripped.comments`. Malformed annotations
/// (missing reason) and unknown rule names are reported into `out` as
/// bad-annotation / unknown-rule diagnostics and dropped.
[[nodiscard]] std::vector<Annotation> parse_annotations(
    const Stripped& stripped, const std::string& path,
    std::vector<Diagnostic>& out);

/// Names of all enforceable rules, for allow() validation and --list-rules.
[[nodiscard]] const std::vector<std::string>& rule_names();

/// Lints one file. `rel_path` is the path relative to the repo root
/// (e.g. "src/ldlb/core/adversary.cpp"); rule scoping keys off it.
[[nodiscard]] std::vector<Diagnostic> lint_file(const std::string& rel_path,
                                               std::string_view content);

/// Lints every .hpp/.cpp under <root>/src/ldlb, sorted by path so output
/// is deterministic. Throws std::runtime_error if the tree is missing.
[[nodiscard]] std::vector<Diagnostic> lint_tree(
    const std::filesystem::path& root);

/// Lints an explicit list of files, each given relative to `root`.
[[nodiscard]] std::vector<Diagnostic> lint_files(
    const std::filesystem::path& root,
    const std::vector<std::string>& rel_paths);

}  // namespace ldlb::lint
