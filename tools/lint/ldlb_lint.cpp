// ldlb_lint CLI.
//
//   ldlb_lint [--root <dir>] [file...]
//
// With no files, lints every .hpp/.cpp under <root>/src/ldlb (the
// invariant-bearing tree; tests, benches, and examples are free to use
// streams, clocks, and threads directly). With files, lints exactly those,
// each given relative to the root — rule scopes key off that path, so a
// fixture tree laid out as <root>/src/ldlb/... lints like the real one.
//
// Exit codes: 0 clean, 1 diagnostics reported, 2 usage or I/O error.

#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "lint_core.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: ldlb_lint [--root <dir>] [--list-rules] [file...]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root") {
      if (++i >= argc) return usage();
      root = argv[i];
    } else if (arg == "--list-rules") {
      for (const std::string& name : ldlb::lint::rule_names()) {
        std::printf("%s\n", name.c_str());
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      files.push_back(arg);
    }
  }

  try {
    const std::vector<ldlb::lint::Diagnostic> diagnostics =
        files.empty() ? ldlb::lint::lint_tree(root)
                      : ldlb::lint::lint_files(root, files);
    for (const auto& d : diagnostics) {
      std::printf("%s\n", ldlb::lint::format(d).c_str());
    }
    if (!diagnostics.empty()) {
      std::fprintf(stderr, "ldlb_lint: %zu diagnostic(s); see "
                           "docs/STATIC_ANALYSIS.md for the rule catalogue "
                           "and suppression syntax\n",
                   diagnostics.size());
      return 1;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ldlb_lint: %s\n", e.what());
    return 2;
  }
  return 0;
}
