// Rule table and lint engine for ldlb_lint.
//
// Pattern rules run per line of the stripped source; each pattern carries
// its own path scope (prefixes under src/ldlb/). The switch rule is a tiny
// structural scan (paren/brace matching) rather than a pattern, because it
// must pair a `default:` label with the enum cases of the same switch.
//
// To add a rule: append to build_rules() (name, per-pattern scopes, fixed
// token label used in the message), document it in docs/STATIC_ANALYSIS.md,
// and plant a fixture under tests/lint_fixtures/ — lint_test asserts the
// exact diagnostic for every rule.

#include <algorithm>
#include <cctype>
#include <regex>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "lint_core.hpp"

namespace ldlb::lint {

namespace {

struct Pattern {
  std::regex re;
  std::string token;   // stable label for the diagnostic message
  bool not_after_lt = false;  // skip matches used as template arguments
  std::vector<std::string> includes;  // prefixes under src/ldlb/; empty = all
  std::vector<std::string> excludes;
};

struct Rule {
  std::string name;
  // message = prefix + "'" + token + "'" + suffix
  std::string prefix;
  std::string suffix;
  std::vector<Pattern> patterns;
};

const std::vector<std::string> kProofLayers = {"core/",  "view/",     "cover/",
                                               "order/", "matching/", "graph/"};
const std::vector<std::string> kSyncUtilities = {
    "util/thread_pool.", "util/cancellation.", "fault/budget_hooks."};

std::vector<Rule> build_rules() {
  auto pat = [](const char* re, const char* token) {
    Pattern p;
    p.re = std::regex(re);
    p.token = token;
    return p;
  };

  std::vector<Rule> rules;

  {
    Rule r;
    r.name = "raw-file-write";
    r.prefix = "raw file write ";
    r.suffix =
        " outside util/atomic_file; route durable output through "
        "write_file_atomic()";
    r.patterns = {
        pat(R"(std::ofstream\b)", "std::ofstream"),
        pat(R"(std::fstream\b)", "std::fstream"),
        pat(R"(\bfopen\s*\()", "fopen("),
        pat(R"(\bfreopen\s*\()", "freopen("),
        pat(R"((::|std::)rename\s*\()", "rename("),
        pat(R"(\bmkstemp\s*\()", "mkstemp("),
        pat(R"(\bO_(WRONLY|RDWR|CREAT|TRUNC|APPEND)\b)",
            "write-mode open(2) flag"),
    };
    for (auto& p : r.patterns) p.excludes = {"util/atomic_file."};
    rules.push_back(std::move(r));
  }

  {
    Rule r;
    r.name = "nondeterminism";
    r.prefix = "nondeterminism source ";
    r.suffix =
        "; certificates are compared byte-for-byte — take an explicit "
        "seeded ldlb::Rng, or keep clocks in util/cancellation";
    Pattern rand_like =
        pat(R"(std::rand\b|\bsrand\s*\(|\brand\s*\()", "rand()");
    Pattern random_device = pat(R"(\brandom_device\b)", "std::random_device");
    Pattern mt = pat(R"(\bmt19937)", "std::mt19937");
    Pattern time_call = pat(R"(\btime\s*\()", "time()");
    Pattern ptr_keyed = pat(R"(std::(multi)?(map|set)\s*<[^,>]*\*)",
                            "pointer-keyed ordered container");
    for (Pattern* p : {&rand_like, &random_device, &mt, &time_call,
                       &ptr_keyed}) {
      p->includes = kProofLayers;
    }
    Pattern wall_clock = pat(R"(\bsystem_clock\b)", "system_clock");
    Pattern mono_clock = pat(R"(\bsteady_clock\b|\bhigh_resolution_clock\b)",
                             "monotonic clock");
    mono_clock.excludes = {"util/cancellation.", "fault/budget_hooks."};
    r.patterns = {rand_like, random_device, mt,        time_call,
                  ptr_keyed, wall_clock,    mono_clock};
    rules.push_back(std::move(r));
  }

  {
    Rule r;
    r.name = "raw-sync";
    r.prefix = "raw concurrency primitive ";
    r.suffix =
        " outside util/thread_pool, util/cancellation, fault/budget_hooks; "
        "use the pool, or annotate why the site is schedule-safe";
    Pattern mutex = pat(R"(std::(recursive_|shared_|timed_)?mutex\b)",
                        "std::mutex");
    mutex.not_after_lt = true;  // the declaration, not each lock_guard use
    r.patterns = {
        pat(R"(std::j?thread\b)", "std::thread"),
        std::move(mutex),
        pat(R"(std::condition_variable\w*)", "std::condition_variable"),
        pat(R"(std::atomic\b|std::atomic_flag\b)", "std::atomic"),
        pat(R"(std::call_once\b|std::once_flag\b)", "std::call_once"),
        pat(R"(std::async\b|std::future\b|std::promise\b)", "std::async"),
    };
    for (auto& p : r.patterns) p.excludes = kSyncUtilities;
    rules.push_back(std::move(r));
  }

  {
    Rule r;
    r.name = "catch-all";
    r.prefix = "";
    r.suffix =
        " outside the thread-pool/guarded-run boundaries; catch the typed "
        "ldlb errors, or annotate why the boundary must be opaque";
    Pattern p = pat(R"(catch\s*\(\s*\.\.\.\s*\))", "catch (...)");
    p.excludes = {"util/thread_pool.", "fault/guarded_run."};
    r.patterns = {std::move(p)};
    rules.push_back(std::move(r));
  }

  {
    Rule r;
    r.name = "raw-process";
    r.prefix = "raw process control ";
    r.suffix =
        " outside util/ipc; spawn, signal and reap workers through the ipc "
        "module so every process-control site is audited";
    r.patterns = {
        pat(R"(\bv?fork\s*\()", "fork("),
        pat(R"(\bexec[lv][pe]{0,2}\s*\()", "exec*("),
        pat(R"(\bpipe2?\s*\()", "pipe("),
        pat(R"(\bwait(pid|id|3|4)\s*\(|::wait\s*\()", "waitpid("),
        pat(R"(\bkill(pg)?\s*\()", "kill("),
        pat(R"(\bsig(action|procmask|nal)\s*\()", "signal("),
        pat(R"(\b_exit\s*\()", "_exit("),
    };
    for (auto& p : r.patterns) p.excludes = {"util/ipc."};
    rules.push_back(std::move(r));
  }

  {
    Rule r;
    r.name = "raw-socket";
    r.prefix = "raw socket syscall ";
    r.suffix =
        " outside util/net; open, connect and configure sockets through "
        "the net module so framing, deadlines and fault injection stay in "
        "one audited place";
    r.patterns = {
        pat(R"(\bsocket\s*\()", "socket("),
        // FaultPlan::bind() is a project method, so the syscall must be
        // ::-qualified to count (matching how util/net calls it).
        pat(R"((^|[^\w])::bind\s*\()", "bind("),
        pat(R"(\blisten\s*\()", "listen("),
        pat(R"(\baccept4?\s*\()", "accept("),
        pat(R"(\bconnect\s*\()", "connect("),
        pat(R"(\bgetsockname\s*\()", "getsockname("),
        pat(R"(\bsetsockopt\s*\()", "setsockopt("),
    };
    for (auto& p : r.patterns) p.excludes = {"util/net."};
    rules.push_back(std::move(r));
  }

  {
    Rule r;
    r.name = "ball-extraction";
    r.prefix = "raw ball extraction ";
    r.suffix =
        " outside view/ball and view/ball_store; the hot path compares "
        "canonical keys (balls_isomorphic_cached / canonical_ball_key) — "
        "annotate any site that genuinely needs a materialised ball";
    Pattern p = pat(R"(\bextract_ball\s*\()", "extract_ball(");
    p.excludes = {"view/ball.", "view/ball_store."};
    r.patterns = {std::move(p)};
    rules.push_back(std::move(r));
  }

  {
    Rule r;
    r.name = "raw-log-write";
    r.prefix = "raw log write ";
    r.suffix =
        " outside recover/cert_log and util/atomic_file; the append-only "
        "certificate log owns its chained-checksum geometry — route appends "
        "and truncations through CertificateLog so tamper evidence cannot "
        "be bypassed";
    r.patterns = {
        pat(R"(\bftruncate\s*\()", "ftruncate("),
        // ::-qualified like raw-socket's bind: truncate_file is the audited
        // wrapper, ::truncate the syscall.
        pat(R"((^|[^\w])::truncate\s*\()", "truncate("),
        pat(R"(\bappend_file_durable\s*\()", "append_file_durable("),
        pat(R"(\btruncate_file\s*\()", "truncate_file("),
        pat(R"(std::ios(_base)?::app\b)", "std::ios::app"),
    };
    for (auto& p : r.patterns) {
      p.excludes = {"util/atomic_file.", "recover/cert_log."};
    }
    rules.push_back(std::move(r));
  }

  // switch-default-on-enum is structural; registered for name validation.
  {
    Rule r;
    r.name = "switch-default-on-enum";
    rules.push_back(std::move(r));
  }

  return rules;
}

const std::vector<Rule>& rules() {
  static const std::vector<Rule> kRules = build_rules();
  return kRules;
}

// True when `sub` (path under src/ldlb/) starts with any listed prefix.
bool has_prefix(const std::string& sub, const std::vector<std::string>& list) {
  return std::any_of(list.begin(), list.end(), [&](const std::string& p) {
    return sub.rfind(p, 0) == 0;
  });
}

bool pattern_in_scope(const std::string& sub, const Pattern& p) {
  if (!p.includes.empty() && !has_prefix(sub, p.includes)) return false;
  return !has_prefix(sub, p.excludes);
}

// Last non-space character before `pos` on the same line, or '\0'.
char prev_nonspace(const std::string& line, std::size_t pos) {
  while (pos > 0) {
    const char c = line[--pos];
    if (std::isspace(static_cast<unsigned char>(c)) == 0) return c;
  }
  return '\0';
}

bool word_bounded(const std::string& text, std::size_t begin,
                  std::size_t end) {
  auto ident = [](char c) {
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
  };
  if (begin > 0 && ident(text[begin - 1])) return false;
  if (end < text.size() && ident(text[end])) return false;
  return true;
}

// Advances past balanced (), returning the index just after the close
// (or std::string::npos when unbalanced).
std::size_t skip_balanced(const std::string& text, std::size_t open,
                          char open_ch, char close_ch) {
  int depth = 0;
  for (std::size_t i = open; i < text.size(); ++i) {
    if (text[i] == open_ch) ++depth;
    if (text[i] == close_ch && --depth == 0) return i + 1;
  }
  return std::string::npos;
}

int line_of(const std::string& text, std::size_t pos) {
  return 1 + static_cast<int>(
                 std::count(text.begin(),
                            text.begin() + static_cast<std::ptrdiff_t>(pos),
                            '\n'));
}

// The project writes enum values as Enum::kName; a `case Foo::kBar:` label
// therefore marks a switch over a project enum, and such switches must
// enumerate every case (no `default:`) so -Wswitch reports new enumerators.
void scan_switches(const std::string& text, const std::string& path,
                   std::vector<Diagnostic>& out) {
  static const std::regex kEnumCase(
      R"(\bcase\s+([A-Za-z_][A-Za-z0-9_:]*)::k[A-Z]\w*\s*:)");
  std::size_t search = 0;
  while (true) {
    const std::size_t kw = text.find("switch", search);
    if (kw == std::string::npos) return;
    search = kw + 6;
    if (!word_bounded(text, kw, kw + 6)) continue;
    std::size_t i = kw + 6;
    while (i < text.size() &&
           std::isspace(static_cast<unsigned char>(text[i])) != 0) {
      ++i;
    }
    if (i >= text.size() || text[i] != '(') continue;
    const std::size_t after_cond = skip_balanced(text, i, '(', ')');
    if (after_cond == std::string::npos) return;
    i = after_cond;
    while (i < text.size() &&
           std::isspace(static_cast<unsigned char>(text[i])) != 0) {
      ++i;
    }
    if (i >= text.size() || text[i] != '{') continue;
    const std::size_t block_end = skip_balanced(text, i, '{', '}');
    if (block_end == std::string::npos) return;

    // Direct content of this switch: blank out nested switch blocks so
    // their cases and defaults attach to the inner scan, not this one.
    std::string body = text.substr(i + 1, block_end - i - 2);
    std::size_t nested = 0;
    while ((nested = body.find("switch", nested)) != std::string::npos) {
      if (!word_bounded(body, nested, nested + 6)) {
        nested += 6;
        continue;
      }
      std::size_t j = nested + 6;
      while (j < body.size() &&
             std::isspace(static_cast<unsigned char>(body[j])) != 0) {
        ++j;
      }
      if (j < body.size() && body[j] == '(') {
        const std::size_t nac = skip_balanced(body, j, '(', ')');
        if (nac != std::string::npos) {
          std::size_t b = nac;
          while (b < body.size() &&
                 std::isspace(static_cast<unsigned char>(body[b])) != 0) {
            ++b;
          }
          if (b < body.size() && body[b] == '{') {
            const std::size_t nbe = skip_balanced(body, b, '{', '}');
            if (nbe != std::string::npos) {
              for (std::size_t k = nested; k < nbe; ++k) {
                if (body[k] != '\n') body[k] = ' ';
              }
              nested = nbe;
              continue;
            }
          }
        }
      }
      nested += 6;
    }

    std::smatch m;
    if (!std::regex_search(body, m, kEnumCase)) continue;
    const std::string enum_name = m[1].str();

    // `default` followed by ':' (not `= default;`).
    std::size_t d = 0;
    while ((d = body.find("default", d)) != std::string::npos) {
      if (!word_bounded(body, d, d + 7)) {
        d += 7;
        continue;
      }
      std::size_t j = d + 7;
      while (j < body.size() &&
             std::isspace(static_cast<unsigned char>(body[j])) != 0) {
        ++j;
      }
      if (j < body.size() && body[j] == ':') {
        out.push_back(
            {path, line_of(text, i + 1 + d), "switch-default-on-enum",
             "switch over enum '" + enum_name +
                 "' has a 'default:' label; enumerate every case so "
                 "-Wswitch reports new enumerators"});
        break;
      }
      d += 7;
    }
  }
}

std::string path_under_ldlb(const std::string& rel_path) {
  static const std::string kPrefix = "src/ldlb/";
  if (rel_path.rfind(kPrefix, 0) == 0) return rel_path.substr(kPrefix.size());
  return rel_path;
}

}  // namespace

std::vector<Annotation> parse_annotations(const Stripped& stripped,
                                          const std::string& path,
                                          std::vector<Diagnostic>& out) {
  return srcmodel::parse_allow_annotations(stripped, path, "ldlb-lint",
                                           rule_names(), out);
}

const std::vector<std::string>& rule_names() {
  static const std::vector<std::string> kNames = [] {
    std::vector<std::string> names;
    for (const Rule& r : rules()) names.push_back(r.name);
    return names;
  }();
  return kNames;
}

std::vector<Diagnostic> lint_file(const std::string& rel_path,
                                  std::string_view content) {
  const Stripped stripped = strip_source(content);
  std::vector<Diagnostic> diagnostics;  // unsuppressible meta-diagnostics
  std::vector<Annotation> annotations =
      parse_annotations(stripped, rel_path, diagnostics);

  const std::string sub = path_under_ldlb(rel_path);
  std::vector<Diagnostic> candidates;

  // Pattern rules, line by line over the stripped text.
  std::istringstream lines(stripped.text);
  std::string line;
  int line_no = 0;
  while (std::getline(lines, line)) {
    ++line_no;
    for (const Rule& rule : rules()) {
      for (const Pattern& p : rule.patterns) {
        if (!pattern_in_scope(sub, p)) continue;
        for (std::sregex_iterator it(line.begin(), line.end(), p.re), end;
             it != end; ++it) {
          if (p.not_after_lt &&
              prev_nonspace(line, static_cast<std::size_t>(it->position())) ==
                  '<') {
            continue;
          }
          candidates.push_back({rel_path, line_no, rule.name,
                                rule.prefix + "'" + p.token + "'" +
                                    rule.suffix});
          break;  // one diagnostic per (line, pattern) is enough
        }
      }
    }
  }

  scan_switches(stripped.text, rel_path, candidates);

  // Apply suppressions, then report annotations that excuse nothing.
  for (const Diagnostic& c : candidates) {
    bool suppressed = false;
    for (Annotation& a : annotations) {
      if (a.target_line == c.line && a.rule == c.rule) {
        a.used = true;
        suppressed = true;
      }
    }
    if (!suppressed) diagnostics.push_back(c);
  }
  for (const Annotation& a : annotations) {
    if (a.used) continue;
    diagnostics.push_back(
        {rel_path, a.line, "stale-suppression",
         a.target_line == 0
             ? "allow(" + a.rule + ") has no following code line to suppress"
             : "allow(" + a.rule + ") suppresses nothing on line " +
                   std::to_string(a.target_line) +
                   "; remove the stale annotation"});
  }

  std::sort(diagnostics.begin(), diagnostics.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              return std::tie(a.line, a.rule, a.message) <
                     std::tie(b.line, b.rule, b.message);
            });
  return diagnostics;
}

std::vector<Diagnostic> lint_tree(const std::filesystem::path& root) {
  return lint_files(root, srcmodel::list_ldlb_sources(root));
}

std::vector<Diagnostic> lint_files(const std::filesystem::path& root,
                                   const std::vector<std::string>& rel_paths) {
  std::vector<Diagnostic> all;
  for (const std::string& rel : rel_paths) {
    const std::vector<Diagnostic> diags =
        lint_file(rel, srcmodel::read_file(root / rel));
    all.insert(all.end(), diags.begin(), diags.end());
  }
  return all;
}

}  // namespace ldlb::lint
