// Internal source model for ldlb_analyze: a token-level symbol indexer
// built on the shared tools/srcmodel lexer.
//
// The indexer is deliberately approximate — no preprocessor, no template
// instantiation, no overload resolution — but errs on the side the passes
// need: call sites resolve by name to *every* definition with that name
// (conservative for taint), lock scopes are lexical brace scopes, and
// loops/locks/sources carry byte positions into the stripped text so the
// passes can reason about containment. docs/STATIC_ANALYSIS.md lists the
// known approximations.
#pragma once

#include <cstddef>
#include <filesystem>
#include <string>
#include <unordered_map>
#include <vector>

#include "srcmodel.hpp"

namespace ldlb::analyze {

/// A call site inside a function body: `name(` possibly qualified.
struct CallSite {
  std::string name;       // simple name, e.g. "now"
  std::string qualified;  // as written, e.g. "Clock::now"
  std::size_t pos = 0;    // byte offset into the stripped text
  int line = 0;
};

/// A `while`, unbounded `for (;;)`, or `do` loop. The span runs from the
/// loop keyword through the end of the body so condition calls count.
struct LoopSite {
  std::size_t span_begin = 0;
  std::size_t span_end = 0;
  int line = 0;
  std::string keyword;  // "while", "for", "do"
};

/// A lexical lock acquisition: std::lock_guard / unique_lock / scoped_lock
/// construction. `scope_end` is the byte offset of the innermost enclosing
/// close brace, i.e. where the guard is destroyed.
struct LockSite {
  std::string mutex;  // normalized argument text, e.g. "g_mutex"
  std::size_t pos = 0;
  std::size_t scope_end = 0;
  int line = 0;
};

/// A nondeterminism source token (clock/random/env/locale) in a body.
struct SourceSite {
  std::string token;     // e.g. "getenv(" or "Clock::now("
  std::string category;  // "clock", "random", "env", "locale"
  std::size_t pos = 0;
  int line = 0;
};

struct Function {
  std::string name;       // simple name, e.g. "run_adversary"
  std::string qualified;  // e.g. "ldlb::ThreadPool::run"
  int line = 0;
  std::size_t body_begin = 0;  // just after the opening brace
  std::size_t body_end = 0;    // the closing brace
  std::vector<CallSite> calls;
  std::vector<LoopSite> loops;
  std::vector<LockSite> locks;
  std::vector<SourceSite> sources;
};

/// One resolved in-tree include directive.
struct IncludeEdge {
  std::string target;  // repo-root-relative path of the included file
  int line = 0;
};

/// A `// ldlb: guarded_by(<mutex>)` field annotation.
struct GuardedField {
  std::string field;
  std::string mutex;  // normalized, e.g. "g_mutex" or "mutex_"
  int line = 0;       // line of the field declaration
};

struct FileModel {
  std::string path;    // repo-root-relative, forward slashes
  std::string module;  // first component under src/ldlb/, e.g. "core"
  srcmodel::Stripped stripped;
  std::vector<IncludeEdge> includes;
  std::vector<Function> functions;
  std::vector<GuardedField> guarded_fields;
  std::vector<srcmodel::Annotation> annotations;  // ldlb-analyze: allow(...)
};

struct SourceModel {
  std::vector<FileModel> files;
  /// simple name -> (file index, function index) of every definition.
  std::unordered_map<std::string, std::vector<std::pair<int, int>>> by_name;
  /// Unsuppressible meta-diagnostics (bad-annotation, unknown-rule, ...).
  std::vector<srcmodel::Diagnostic> meta;
};

/// Indexes one file. `rel_path` keys module scoping and include
/// resolution; meta-diagnostics (malformed annotations) land in `meta`.
[[nodiscard]] FileModel index_file(const std::string& rel_path,
                                   const std::string& content,
                                   std::vector<srcmodel::Diagnostic>& meta);

/// Indexes every listed file and builds the cross-file name table.
[[nodiscard]] SourceModel build_model(const std::filesystem::path& root,
                                      const std::vector<std::string>& rel_paths);

/// 1-based line number of byte offset `pos` in `text`.
[[nodiscard]] int line_at(const std::string& text, std::size_t pos);

/// Strips whitespace, a leading '&', and a leading 'this->' from a lock
/// argument / guarded_by mutex name so the two spellings compare equal.
[[nodiscard]] std::string normalize_mutex(std::string name);

}  // namespace ldlb::analyze
