// ldlb_analyze — cross-translation-unit architecture & concurrency
// analyzer.
//
// Where ldlb_lint (tools/lint) checks line-local invariants, this tool
// checks the *global* ones that protect the byte-identical-certificate
// guarantee: four graph-aware passes run over a whole-program symbol index
// of src/ldlb built on the shared tools/srcmodel lexer.
//
//   layering      — the include graph must respect the declared layer
//                   order in tools/analyze/layers.txt (no back-edges, no
//                   include cycles; the offending chain is printed);
//   determinism   — no function transitively reachable from a
//                   certificate-producing entry point (run_adversary*,
//                   plan/combine_adversary_step, validators, serializers)
//                   may reach a clock/random/env/locale source; the full
//                   call chain is printed;
//   locks         — every field annotated `// ldlb: guarded_by(<mutex>)`
//                   is accessed only inside a lexical scope holding that
//                   mutex, and observed nested acquisitions must form a
//                   consistent global lock order;
//   cancellation  — every while/unbounded-for loop in core/, fault/fleet
//                   and the simulator must reach a cancel/poll/deadline
//                   check through its body's call graph.
//
// Suppressions share ldlb_lint's shape with the analyzer's own marker:
//
//   // ldlb-analyze: allow(<pass>): <reason>
//
// trailing the offending line or on a comment line directly above it; the
// reason is mandatory and stale suppressions are themselves reported.
//
// Pass semantics, the layers.txt format, the annotation grammar, and the
// resolver's known approximations: docs/STATIC_ANALYSIS.md.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "srcmodel.hpp"

namespace ldlb::analyze {

using srcmodel::Diagnostic;
using srcmodel::format;

struct Options {
  std::filesystem::path root = ".";
  /// Layer declaration; empty means <root>/tools/analyze/layers.txt.
  std::filesystem::path layers_file;
  /// When non-empty, only diagnostics anchored in these root-relative
  /// files are reported — the analysis itself always runs whole-tree, so
  /// reachability and layering stay exact under --changed filtering.
  std::vector<std::string> only;
};

/// Names of the four passes, for allow() validation and --list-passes.
[[nodiscard]] const std::vector<std::string>& pass_names();

/// Runs all passes over <root>/src/ldlb. Diagnostics are sorted by
/// (path, line, pass, message). Throws std::runtime_error on a missing
/// tree or unreadable layers file.
[[nodiscard]] std::vector<Diagnostic> analyze_tree(const Options& options);

/// Diagnostics as a JSON array of {path, line, pass, message} objects.
[[nodiscard]] std::string to_json(const std::vector<Diagnostic>& diagnostics);

/// Parsed layers.txt: module name -> layer index (0 = lowest). Exposed
/// for tests; `source` is the file's text.
[[nodiscard]] std::vector<std::vector<std::string>> parse_layers(
    const std::string& source);

}  // namespace ldlb::analyze
