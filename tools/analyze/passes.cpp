// The four ldlb_analyze passes over the whole-program symbol index, plus
// the shared suppression/stale bookkeeping, JSON rendering, and the
// layers.txt parser. Pass semantics and the resolver's documented
// approximations: docs/STATIC_ANALYSIS.md, "Cross-TU analysis".

#include <algorithm>
#include <cstdio>
#include <deque>
#include <functional>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "analyze_core.hpp"
#include "model.hpp"

namespace ldlb::analyze {

namespace {

// --- layering ------------------------------------------------------------

void run_layering(const SourceModel& model,
                  const std::vector<std::vector<std::string>>& layers,
                  std::vector<Diagnostic>& out) {
  std::unordered_map<std::string, int> layer_of;
  for (int i = 0; i < static_cast<int>(layers.size()); ++i) {
    for (const std::string& module : layers[static_cast<std::size_t>(i)]) {
      layer_of[module] = i;
    }
  }
  std::unordered_map<std::string, int> file_index;
  for (int f = 0; f < static_cast<int>(model.files.size()); ++f) {
    file_index[model.files[static_cast<std::size_t>(f)].path] = f;
  }

  std::set<std::string> undeclared_reported;
  for (const FileModel& file : model.files) {
    const auto src_it = layer_of.find(file.module);
    if (src_it == layer_of.end()) {
      if (undeclared_reported.insert(file.module).second) {
        out.push_back({file.path, 1, "layering",
                       "module '" + file.module +
                           "' is not declared in layers.txt; add it to a "
                           "layer before depending on or from it"});
      }
      continue;
    }
    for (const IncludeEdge& edge : file.includes) {
      const auto tgt_file = file_index.find(edge.target);
      if (tgt_file == file_index.end()) continue;  // out-of-tree include
      const FileModel& target =
          model.files[static_cast<std::size_t>(tgt_file->second)];
      const auto tgt_it = layer_of.find(target.module);
      if (tgt_it == layer_of.end()) continue;  // reported above, once
      if (tgt_it->second > src_it->second) {
        out.push_back(
            {file.path, edge.line, "layering",
             "include of '" + edge.target + "' reaches up the layer order: '" +
                 file.module + "' (layer " + std::to_string(src_it->second) +
                 ") may not depend on '" + target.module + "' (layer " +
                 std::to_string(tgt_it->second) + ")"});
      }
    }
  }

  // File-level include cycles, regardless of layers. Iterative DFS with a
  // grey stack; each distinct cycle is reported once, anchored at its
  // lexically smallest member.
  std::unordered_map<std::string, int> colour;  // 0 white, 1 grey, 2 black
  std::vector<std::string> stack;
  std::set<std::vector<std::string>> seen_cycles;

  std::function<void(const std::string&)> dfs = [&](const std::string& path) {
    colour[path] = 1;
    stack.push_back(path);
    const FileModel& file =
        model.files[static_cast<std::size_t>(file_index.at(path))];
    for (const IncludeEdge& edge : file.includes) {
      if (file_index.find(edge.target) == file_index.end()) continue;
      const int c = colour[edge.target];
      if (c == 0) {
        dfs(edge.target);
      } else if (c == 1) {
        const auto from =
            std::find(stack.begin(), stack.end(), edge.target);
        std::vector<std::string> cycle(from, stack.end());
        std::vector<std::string> key = cycle;
        std::sort(key.begin(), key.end());
        if (!seen_cycles.insert(key).second) continue;
        const std::string& anchor =
            *std::min_element(cycle.begin(), cycle.end());
        std::string chain;
        // Rotate so the chain starts at the anchor, then close the loop.
        const auto pivot = std::find(cycle.begin(), cycle.end(), anchor);
        std::rotate(cycle.begin(), pivot, cycle.end());
        for (const std::string& p : cycle) chain += p + " -> ";
        chain += cycle.front();
        // Anchor line: the anchor's include of the next file in the cycle.
        int line = 1;
        const std::string& next =
            cycle.size() > 1 ? cycle[1] : cycle.front();
        const FileModel& anchor_file =
            model.files[static_cast<std::size_t>(file_index.at(anchor))];
        for (const IncludeEdge& e : anchor_file.includes) {
          if (e.target == next) {
            line = e.line;
            break;
          }
        }
        out.push_back({anchor, line, "layering",
                       "include cycle: " + chain});
      }
    }
    stack.pop_back();
    colour[path] = 2;
  };
  for (const FileModel& file : model.files) {
    if (colour[file.path] == 0) dfs(file.path);
  }
}

// --- determinism ---------------------------------------------------------

const std::vector<std::string>& entry_prefixes() {
  static const std::vector<std::string> kPrefixes = {
      "run_adversary",       "guarded_run_adversary",
      "plan_adversary_step", "combine_adversary_step",
      "validate_",           "serialize_",
      "deserialize_",        "write_certificate",
      "read_certificate"};
  return kPrefixes;
}

bool is_entry_point(const std::string& name) {
  for (const std::string& p : entry_prefixes()) {
    if (name.rfind(p, 0) == 0) return true;
  }
  return false;
}

void run_determinism(const SourceModel& model, std::vector<Diagnostic>& out) {
  // Flatten (file, fn) to a global id.
  std::vector<std::pair<int, int>> fns;
  std::map<std::pair<int, int>, int> gid_of;
  for (int f = 0; f < static_cast<int>(model.files.size()); ++f) {
    const FileModel& file = model.files[static_cast<std::size_t>(f)];
    for (int i = 0; i < static_cast<int>(file.functions.size()); ++i) {
      gid_of[{f, i}] = static_cast<int>(fns.size());
      fns.push_back({f, i});
    }
  }
  const auto fn_at = [&](int gid) -> const Function& {
    const auto [f, i] = fns[static_cast<std::size_t>(gid)];
    return model.files[static_cast<std::size_t>(f)]
        .functions[static_cast<std::size_t>(i)];
  };
  const auto file_at = [&](int gid) -> const FileModel& {
    return model.files[static_cast<std::size_t>(
        fns[static_cast<std::size_t>(gid)].first)];
  };

  // Multi-source BFS from every entry point, with parent pointers so the
  // diagnostic can print the concrete call chain. Entry points are seeded
  // in (file, function) order, so the chain chosen for a shared callee is
  // deterministic.
  std::vector<int> parent(fns.size(), -1);
  std::vector<int> state(fns.size(), 0);  // 0 unvisited, 1 reached
  std::deque<int> queue;
  for (int gid = 0; gid < static_cast<int>(fns.size()); ++gid) {
    if (is_entry_point(fn_at(gid).name)) {
      state[static_cast<std::size_t>(gid)] = 1;
      queue.push_back(gid);
    }
  }
  while (!queue.empty()) {
    const int gid = queue.front();
    queue.pop_front();
    for (const CallSite& call : fn_at(gid).calls) {
      const auto targets = model.by_name.find(call.name);
      if (targets == model.by_name.end()) continue;
      for (const auto& [tf, ti] : targets->second) {
        const int tgid = gid_of.at({tf, ti});
        if (state[static_cast<std::size_t>(tgid)] != 0) continue;
        state[static_cast<std::size_t>(tgid)] = 1;
        parent[static_cast<std::size_t>(tgid)] = gid;
        queue.push_back(tgid);
      }
    }
  }

  for (int gid = 0; gid < static_cast<int>(fns.size()); ++gid) {
    if (state[static_cast<std::size_t>(gid)] == 0) continue;
    const Function& fn = fn_at(gid);
    if (fn.sources.empty()) continue;
    // Reconstruct entry -> ... -> fn once per function.
    std::vector<int> chain;
    for (int at = gid; at != -1; at = parent[static_cast<std::size_t>(at)]) {
      chain.push_back(at);
    }
    std::reverse(chain.begin(), chain.end());
    std::string via;
    for (std::size_t k = 0; k < chain.size(); ++k) {
      if (k > 0) via += " -> ";
      via += fn_at(chain[k]).qualified;
    }
    const std::string entry_name = fn_at(chain.front()).qualified;
    for (const SourceSite& site : fn.sources) {
      std::string message =
          "nondeterminism (" + site.category + "): '" + site.token +
          "' is reachable from certificate entry point '" + entry_name + "'";
      message += chain.size() == 1 ? " (inside the entry point itself)"
                                   : " via " + via;
      out.push_back({file_at(gid).path, site.line, "determinism", message});
    }
  }
}

// --- locks ---------------------------------------------------------------

// Sibling file that shares declarations with `path`: the matching .cpp for
// a .hpp and vice versa, so a field annotated in a header is checked in
// the source file that implements the class.
std::string sibling_path(const std::string& path) {
  const auto dot = path.find_last_of('.');
  if (dot == std::string::npos) return {};
  const std::string ext = path.substr(dot);
  if (ext == ".hpp") return path.substr(0, dot) + ".cpp";
  if (ext == ".cpp") return path.substr(0, dot) + ".hpp";
  return {};
}

void run_locks(const SourceModel& model, std::vector<Diagnostic>& out) {
  std::unordered_map<std::string, int> file_index;
  for (int f = 0; f < static_cast<int>(model.files.size()); ++f) {
    file_index[model.files[static_cast<std::size_t>(f)].path] = f;
  }

  for (const FileModel& file : model.files) {
    for (const GuardedField& gf : file.guarded_fields) {
      std::vector<const FileModel*> scan{&file};
      const std::string sib = sibling_path(file.path);
      if (const auto it = file_index.find(sib); it != file_index.end()) {
        scan.push_back(&model.files[static_cast<std::size_t>(it->second)]);
      }
      const std::regex access(R"(\b)" + gf.field + R"(\b)");
      for (const FileModel* fm : scan) {
        for (const Function& fn : fm->functions) {
          const std::string body = fm->stripped.text.substr(
              fn.body_begin, fn.body_end - fn.body_begin);
          for (std::sregex_iterator it(body.begin(), body.end(), access),
               end_it;
               it != end_it; ++it) {
            const std::size_t pos =
                fn.body_begin + static_cast<std::size_t>(it->position());
            const int line = line_at(fm->stripped.text, pos);
            if (fm == &file && line == gf.line) continue;  // the decl itself
            bool held = false;
            for (const LockSite& lock : fn.locks) {
              if (lock.mutex == gf.mutex && lock.pos < pos &&
                  pos < lock.scope_end) {
                held = true;
                break;
              }
            }
            if (!held) {
              out.push_back({fm->path, line, "locks",
                             "field '" + gf.field + "' (guarded by '" +
                                 gf.mutex + "') accessed in '" + fn.qualified +
                                 "' without holding '" + gf.mutex + "'"});
            }
          }
        }
      }
    }
  }

  // Lock-order pass: an acquisition of B lexically inside the scope of A
  // records the ordered pair (A, B); observing both (A, B) and (B, A)
  // anywhere in the tree is an inversion. Lock identity is (file, name),
  // so a `mutex_` member in two unrelated classes does not alias.
  struct PairSite {
    std::string path;
    int line = 0;
  };
  std::map<std::pair<std::string, std::string>, PairSite> pairs;
  for (const FileModel& file : model.files) {
    for (const Function& fn : file.functions) {
      for (const LockSite& outer : fn.locks) {
        for (const LockSite& inner : fn.locks) {
          if (outer.mutex == inner.mutex) continue;
          if (!(outer.pos < inner.pos && inner.pos < outer.scope_end)) {
            continue;
          }
          const std::pair<std::string, std::string> key = {
              file.path + "#" + outer.mutex, file.path + "#" + inner.mutex};
          if (pairs.find(key) == pairs.end()) {
            pairs[key] = {file.path, inner.line};
          }
        }
      }
    }
  }
  for (const auto& [key, site] : pairs) {
    const auto inverse = pairs.find({key.second, key.first});
    if (inverse == pairs.end()) continue;
    const std::string outer = key.first.substr(key.first.find('#') + 1);
    const std::string inner = key.second.substr(key.second.find('#') + 1);
    out.push_back({site.path, site.line, "locks",
                   "lock-order inversion: '" + inner +
                       "' acquired while holding '" + outer +
                       "', but the opposite order occurs at " +
                       inverse->second.path + ":" +
                       std::to_string(inverse->second.line)});
  }
}

// --- cancellation --------------------------------------------------------

bool cancellation_scoped(const FileModel& file) {
  return file.module == "core" ||
         file.path.find("fault/fleet") != std::string::npos ||
         file.path.find("local/simulator") != std::string::npos;
}

const std::regex& poll_pattern() {
  static const std::regex kPoll(
      R"(\w*(?:[Cc]ancel|[Pp]oll|[Dd]eadline|[Ee]xpired)\w*)");
  return kPoll;
}

void run_cancellation(const SourceModel& model, std::vector<Diagnostic>& out) {
  // reaches_poll fixpoint: a function polls directly when its body contains
  // a cancel/poll/deadline/expired identifier, or transitively when any
  // callee (resolved by name) polls. Reverse-edge BFS from the direct set.
  std::vector<std::pair<int, int>> fns;
  std::map<std::pair<int, int>, int> gid_of;
  for (int f = 0; f < static_cast<int>(model.files.size()); ++f) {
    const FileModel& file = model.files[static_cast<std::size_t>(f)];
    for (int i = 0; i < static_cast<int>(file.functions.size()); ++i) {
      gid_of[{f, i}] = static_cast<int>(fns.size());
      fns.push_back({f, i});
    }
  }
  const auto fn_at = [&](int gid) -> const Function& {
    const auto [f, i] = fns[static_cast<std::size_t>(gid)];
    return model.files[static_cast<std::size_t>(f)]
        .functions[static_cast<std::size_t>(i)];
  };

  std::vector<std::vector<int>> callers(fns.size());
  std::vector<char> reaches(fns.size(), 0);
  std::deque<int> queue;
  for (int gid = 0; gid < static_cast<int>(fns.size()); ++gid) {
    const auto [f, i] = fns[static_cast<std::size_t>(gid)];
    const FileModel& file = model.files[static_cast<std::size_t>(f)];
    const Function& fn = fn_at(gid);
    const std::string body =
        file.stripped.text.substr(fn.body_begin, fn.body_end - fn.body_begin);
    if (std::regex_search(body, poll_pattern())) {
      reaches[static_cast<std::size_t>(gid)] = 1;
      queue.push_back(gid);
    }
    for (const CallSite& call : fn.calls) {
      const auto targets = model.by_name.find(call.name);
      if (targets == model.by_name.end()) continue;
      for (const auto& [tf, ti] : targets->second) {
        callers[static_cast<std::size_t>(gid_of.at({tf, ti}))].push_back(gid);
      }
    }
  }
  while (!queue.empty()) {
    const int gid = queue.front();
    queue.pop_front();
    for (const int caller : callers[static_cast<std::size_t>(gid)]) {
      if (reaches[static_cast<std::size_t>(caller)] != 0) continue;
      reaches[static_cast<std::size_t>(caller)] = 1;
      queue.push_back(caller);
    }
  }

  for (const FileModel& file : model.files) {
    if (!cancellation_scoped(file)) continue;
    for (const Function& fn : file.functions) {
      for (const LoopSite& loop : fn.loops) {
        const std::string span = file.stripped.text.substr(
            loop.span_begin, loop.span_end - loop.span_begin);
        if (std::regex_search(span, poll_pattern())) continue;
        bool ok = false;
        for (const CallSite& call : fn.calls) {
          if (call.pos < loop.span_begin || call.pos >= loop.span_end) {
            continue;
          }
          const auto targets = model.by_name.find(call.name);
          if (targets == model.by_name.end()) continue;
          for (const auto& [tf, ti] : targets->second) {
            if (reaches[static_cast<std::size_t>(gid_of.at({tf, ti}))] != 0) {
              ok = true;
              break;
            }
          }
          if (ok) break;
        }
        if (!ok) {
          out.push_back(
              {file.path, loop.line, "cancellation",
               "unbounded '" + loop.keyword + "' loop in '" + fn.qualified +
                   "' cannot reach a cancellation/poll/deadline check; poll "
                   "inside the loop or annotate why it terminates"});
        }
      }
    }
  }
}

// --- suppression & output ------------------------------------------------

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

const std::vector<std::string>& pass_names() {
  static const std::vector<std::string> kNames = {"layering", "determinism",
                                                  "locks", "cancellation"};
  return kNames;
}

std::vector<std::vector<std::string>> parse_layers(const std::string& source) {
  std::vector<std::vector<std::string>> layers;
  std::istringstream lines(source);
  std::string line;
  while (std::getline(lines, line)) {
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    std::istringstream words(line);
    std::vector<std::string> layer;
    std::string word;
    while (words >> word) layer.push_back(word);
    if (!layer.empty()) layers.push_back(std::move(layer));
  }
  return layers;
}

std::vector<Diagnostic> analyze_tree(const Options& options) {
  const std::filesystem::path layers_path =
      options.layers_file.empty()
          ? options.root / "tools" / "analyze" / "layers.txt"
          : options.layers_file;
  const std::vector<std::vector<std::string>> layers =
      parse_layers(srcmodel::read_file(layers_path));

  SourceModel model =
      build_model(options.root, srcmodel::list_ldlb_sources(options.root));

  std::vector<Diagnostic> raw;
  run_layering(model, layers, raw);
  run_determinism(model, raw);
  run_locks(model, raw);
  run_cancellation(model, raw);

  // Suppression: an `ldlb-analyze: allow(<pass>)` annotation swallows
  // every same-pass diagnostic anchored on its target line; annotations
  // that swallow nothing become stale-suppression diagnostics, and the
  // annotation-parser meta-diagnostics are never suppressible.
  std::unordered_map<std::string, FileModel*> by_path;
  for (FileModel& file : model.files) by_path[file.path] = &file;

  std::vector<Diagnostic> diagnostics;
  for (Diagnostic& d : raw) {
    bool suppressed = false;
    if (const auto it = by_path.find(d.path); it != by_path.end()) {
      for (srcmodel::Annotation& a : it->second->annotations) {
        if (a.rule == d.rule && a.target_line == d.line) {
          a.used = true;
          suppressed = true;
        }
      }
    }
    if (!suppressed) diagnostics.push_back(std::move(d));
  }
  for (const FileModel& file : model.files) {
    for (const srcmodel::Annotation& a : file.annotations) {
      if (a.used) continue;
      diagnostics.push_back(
          {file.path, a.line, "stale-suppression",
           a.target_line == 0
               ? "allow(" + a.rule + ") has no following code line to suppress"
               : "allow(" + a.rule + ") suppresses nothing on line " +
                     std::to_string(a.target_line) +
                     "; remove the stale annotation"});
    }
  }
  for (const Diagnostic& d : model.meta) diagnostics.push_back(d);

  if (!options.only.empty()) {
    const std::set<std::string> keep(options.only.begin(), options.only.end());
    std::erase_if(diagnostics, [&keep](const Diagnostic& d) {
      return keep.find(d.path) == keep.end();
    });
  }

  std::sort(diagnostics.begin(), diagnostics.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              return std::tie(a.path, a.line, a.rule, a.message) <
                     std::tie(b.path, b.line, b.rule, b.message);
            });
  diagnostics.erase(std::unique(diagnostics.begin(), diagnostics.end(),
                                [](const Diagnostic& a, const Diagnostic& b) {
                                  return a.path == b.path && a.line == b.line &&
                                         a.rule == b.rule &&
                                         a.message == b.message;
                                }),
                    diagnostics.end());
  return diagnostics;
}

std::string to_json(const std::vector<Diagnostic>& diagnostics) {
  std::string out = "[";
  for (std::size_t i = 0; i < diagnostics.size(); ++i) {
    const Diagnostic& d = diagnostics[i];
    if (i > 0) out += ",";
    out += "\n  {\"path\": \"" + json_escape(d.path) +
           "\", \"line\": " + std::to_string(d.line) + ", \"pass\": \"" +
           json_escape(d.rule) + "\", \"message\": \"" +
           json_escape(d.message) + "\"}";
  }
  out += diagnostics.empty() ? "]\n" : "\n]\n";
  return out;
}

}  // namespace ldlb::analyze
