// ldlb_analyze CLI.
//
//   ldlb_analyze [--root <dir>] [--layers <file>] [--json]
//                [--only <file>...] [--list-passes]
//
// Runs the four cross-TU passes (layering, determinism, locks,
// cancellation) over <root>/src/ldlb. --only filters which files may
// *anchor* a diagnostic; the analysis itself always runs whole-tree so
// reachability and layering stay exact under scripts/lint.sh --changed.
// --json renders the diagnostics as a JSON array instead of file:line
// text lines.
//
// Exit codes: 0 clean, 1 diagnostics reported, 2 usage or I/O error.

#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "analyze_core.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: ldlb_analyze [--root <dir>] [--layers <file>] "
               "[--json] [--only <file>...] [--list-passes]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  ldlb::analyze::Options options;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root") {
      if (++i >= argc) return usage();
      options.root = argv[i];
    } else if (arg == "--layers") {
      if (++i >= argc) return usage();
      options.layers_file = argv[i];
    } else if (arg == "--only") {
      if (++i >= argc) return usage();
      options.only.push_back(argv[i]);
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--list-passes") {
      for (const std::string& name : ldlb::analyze::pass_names()) {
        std::printf("%s\n", name.c_str());
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      // Bare operands are --only shorthand, mirroring ldlb_lint's file list.
      options.only.push_back(arg);
    }
  }

  try {
    const std::vector<ldlb::analyze::Diagnostic> diagnostics =
        ldlb::analyze::analyze_tree(options);
    if (json) {
      std::fputs(ldlb::analyze::to_json(diagnostics).c_str(), stdout);
    } else {
      for (const auto& d : diagnostics) {
        std::printf("%s\n", ldlb::analyze::format(d).c_str());
      }
    }
    if (!diagnostics.empty()) {
      std::fprintf(stderr,
                   "ldlb_analyze: %zu diagnostic(s); see "
                   "docs/STATIC_ANALYSIS.md (\"Cross-TU analysis\") for pass "
                   "semantics and suppression syntax\n",
                   diagnostics.size());
      return 1;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ldlb_analyze: %s\n", e.what());
    return 2;
  }
  return 0;
}
