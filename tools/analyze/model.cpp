// Token-level symbol indexer for ldlb_analyze.
//
// One forward pass over the stripped source builds the file model: a
// scope-tracking declaration scanner finds function definitions (including
// out-of-line methods and constructors with init lists), and a body walker
// records call sites, loops, and lexical lock acquisitions. Source-token
// sites (clocks, randomness, env, locale) and guarded-field annotations
// are collected per body with plain regexes over the stripped text, which
// cannot false-positive on comments or string literals.

#include <algorithm>
#include <cctype>
#include <regex>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "analyze_core.hpp"
#include "model.hpp"

namespace ldlb::analyze {

namespace {

struct Token {
  enum Kind { kIdent, kPunct };
  Kind kind = kPunct;
  std::string text;
  std::size_t pos = 0;
  int line = 0;
};

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// Tokenizes stripped source into identifiers and punctuation; "::" is one
// token. Preprocessor lines (including backslash continuations) and the
// residual quote characters left by the stripper are skipped entirely.
std::vector<Token> tokenize(const std::string& text) {
  std::vector<Token> tokens;
  const std::size_t n = text.size();
  int line = 1;
  bool at_line_start = true;
  std::size_t i = 0;
  while (i < n) {
    const char c = text[i];
    if (c == '\n') {
      ++line;
      at_line_start = true;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    if (at_line_start && c == '#') {
      while (i < n && text[i] != '\n') {
        if (text[i] == '\\' && i + 1 < n && text[i + 1] == '\n') {
          ++line;
          i += 2;
          continue;
        }
        ++i;
      }
      continue;
    }
    at_line_start = false;
    if (is_ident_char(c)) {
      const std::size_t start = i;
      while (i < n && is_ident_char(text[i])) ++i;
      tokens.push_back(
          {Token::kIdent, text.substr(start, i - start), start, line});
      continue;
    }
    if (c == '"' || c == '\'') {
      ++i;  // literal delimiters survive stripping; their contents did not
      continue;
    }
    if (c == ':' && i + 1 < n && text[i + 1] == ':') {
      tokens.push_back({Token::kPunct, "::", i, line});
      i += 2;
      continue;
    }
    tokens.push_back({Token::kPunct, std::string(1, c), i, line});
    ++i;
  }
  return tokens;
}

// Keywords that look like `name(...)` but are neither calls nor function
// definitions.
bool is_excluded_name(const std::string& name) {
  static const std::set<std::string> kExcluded = {
      "if",          "for",           "while",      "switch",
      "catch",       "return",        "sizeof",     "alignof",
      "alignas",     "decltype",      "noexcept",   "static_assert",
      "new",         "delete",        "throw",      "co_return",
      "co_await",    "co_yield",      "assert",     "defined",
      "static_cast", "dynamic_cast",  "const_cast", "reinterpret_cast",
      "typeid",      "__builtin_expect"};
  return kExcluded.count(name) > 0;
}

struct Matcher {
  const std::vector<Token>& t;
  const std::string& text;

  [[nodiscard]] std::size_t size() const { return t.size(); }
  [[nodiscard]] const std::string& at(std::size_t i) const {
    static const std::string kEnd;
    return i < t.size() ? t[i].text : kEnd;
  }
  [[nodiscard]] bool ident(std::size_t i) const {
    return i < t.size() && t[i].kind == Token::kIdent;
  }

  // Index just past the token matching `open` (e.g. '(' -> ')').
  [[nodiscard]] std::size_t skip_balanced(std::size_t i, const char* open,
                                          const char* close) const {
    int depth = 0;
    for (; i < t.size(); ++i) {
      if (t[i].text == open) ++depth;
      if (t[i].text == close && --depth == 0) return i + 1;
    }
    return t.size();
  }

  // Index just past the ';' closing a declaration/statement, consuming
  // balanced (), {}, [] so initializer lists and lambdas do not derail it.
  [[nodiscard]] std::size_t skip_to_semicolon(std::size_t i) const {
    int paren = 0, brace = 0, bracket = 0;
    for (; i < t.size(); ++i) {
      const std::string& s = t[i].text;
      if (s == "(") ++paren;
      if (s == ")") --paren;
      if (s == "{") ++brace;
      if (s == "}") --brace;
      if (s == "[") ++bracket;
      if (s == "]") --bracket;
      if (s == ";" && paren <= 0 && brace <= 0 && bracket <= 0) return i + 1;
      if (s == "}" && brace < 0) return i;  // ran off the enclosing scope
    }
    return t.size();
  }

  // Index just past a balanced template argument list opened at `<`.
  [[nodiscard]] std::size_t skip_angles(std::size_t i) const {
    int depth = 0, paren = 0;
    for (; i < t.size(); ++i) {
      const std::string& s = t[i].text;
      if (s == "(") ++paren;
      if (s == ")") --paren;
      if (paren > 0) continue;
      if (s == "<") ++depth;
      if (s == ">" && --depth == 0) return i + 1;
      if (s == ";" || s == "{") return i;  // not a template list after all
    }
    return t.size();
  }
};

class Indexer {
 public:
  Indexer(FileModel& file, const std::vector<Token>& tokens)
      : file_(file), m_{tokens, file.stripped.text} {}

  void run() {
    std::vector<std::string> scope;
    parse_decl_region(0, m_.size(), scope);
  }

 private:
  FileModel& file_;
  Matcher m_;

  // --- declaration scope ---------------------------------------------------

  // Parses tokens [i, end) as namespace/class/top-level declarations.
  void parse_decl_region(std::size_t i, std::size_t end,
                         std::vector<std::string>& scope) {
    while (i < end) {
      const std::string& s = m_.at(i);
      if (s == "}") return;  // caller consumed the matching open
      if (s == "namespace") {
        i = parse_namespace(i, scope);
        continue;
      }
      if (s == "template") {
        i = (m_.at(i + 1) == "<") ? m_.skip_angles(i + 1) : i + 1;
        continue;
      }
      if ((s == "class" || s == "struct" || s == "union") &&
          m_.at(i + 1) != "{" && !(i > 0 && m_.at(i - 1) == "enum")) {
        i = parse_class(i, scope);
        continue;
      }
      if (s == "enum") {
        // enum [class] Name [: type] { ... };  — no functions inside.
        std::size_t j = i + 1;
        while (j < end && m_.at(j) != "{" && m_.at(j) != ";") ++j;
        i = (m_.at(j) == "{") ? m_.skip_balanced(j, "{", "}") : j + 1;
        continue;
      }
      if (s == "using" || s == "typedef" || s == "friend" ||
          s == "static_assert") {
        i = m_.skip_to_semicolon(i);
        continue;
      }
      if (s == "{") {  // anonymous block / aggregate at decl scope
        i = m_.skip_balanced(i, "{", "}");
        continue;
      }
      if (s == ";" || s == "public" || s == "private" || s == "protected" ||
          s == ":") {
        ++i;
        continue;
      }
      i = parse_declaration(i, end, scope);
    }
  }

  std::size_t parse_namespace(std::size_t i, std::vector<std::string>& scope) {
    if (i > 0 && m_.at(i - 1) == "using") return m_.skip_to_semicolon(i);
    std::size_t j = i + 1;
    std::vector<std::string> parts;
    while (m_.ident(j)) {
      parts.push_back(m_.at(j));
      ++j;
      if (m_.at(j) == "::") ++j;
    }
    if (m_.at(j) == "=") return m_.skip_to_semicolon(j);  // namespace alias
    if (m_.at(j) != "{") return j + 1;
    const std::size_t close = m_.skip_balanced(j, "{", "}");
    const std::size_t depth_before = scope.size();
    for (const std::string& p : parts) scope.push_back(p);
    parse_decl_region(j + 1, close - 1, scope);
    scope.resize(depth_before);
    return close;
  }

  std::size_t parse_class(std::size_t i, std::vector<std::string>& scope) {
    // class [attrs] Name [final] [: bases] { ... } [vars] ;
    std::size_t j = i + 1;
    std::string name;
    while (j < m_.size()) {
      const std::string& s = m_.at(j);
      if (s == ";") return j + 1;  // forward declaration
      if (s == "{") break;
      if (s == ":") break;  // base clause; name was the last identifier
      if (s == "<") {
        j = m_.skip_angles(j);  // specialization arguments
        continue;
      }
      if (m_.ident(j) && s != "final" && s != "alignas") name = s;
      ++j;
    }
    while (j < m_.size() && m_.at(j) != "{" && m_.at(j) != ";") ++j;
    if (m_.at(j) != "{") return j + 1;
    const std::size_t close = m_.skip_balanced(j, "{", "}");
    scope.push_back(name);
    parse_decl_region(j + 1, close - 1, scope);
    scope.pop_back();
    // Trailing declarator list (`} x, y;`) is skipped by the caller loop.
    return close;
  }

  // Parses one declaration starting at `i`; records a Function when it is
  // a definition. Returns the index to continue from.
  std::size_t parse_declaration(std::size_t i, std::size_t end,
                                std::vector<std::string>& scope) {
    // Scan forward for the declarator's '(' — the earliest of '(', '=',
    // ';', '{' decides the shape.
    std::size_t j = i;
    while (j < end) {
      const std::string& s = m_.at(j);
      if (s == "(") break;
      if (s == "=" || s == ";") return m_.skip_to_semicolon(j);
      if (s == "{") return m_.skip_balanced(j, "{", "}");
      if (s == "<") {
        const std::size_t after = m_.skip_angles(j);
        if (after == j) return j + 1;  // stray '<'
        j = after;
        continue;
      }
      if (s == "}") return j;
      ++j;
    }
    if (j >= end) return end;

    // Name: the identifier chain immediately before '('. `operator` forms
    // get the keyword as their simple name — enough to skip them cleanly.
    std::string simple, written;
    for (std::size_t k = j; k-- > i;) {
      if (m_.ident(k)) {
        if (simple.empty()) simple = m_.at(k);
        written = m_.at(k) + written;
        if (k >= 1 && m_.at(k - 1) == "::") {
          written = "::" + written;
          --k;
          continue;
        }
      }
      break;
    }
    // Nameless/operator/keyword candidates still get the trailing-token
    // scan (so an `operator()` body cannot derail its siblings) but are
    // not recorded — calls through functors are outside the model anyway.
    const bool record = !simple.empty() && !is_excluded_name(simple);

    const int name_line = j > 0 ? m_.t[j - 1].line : m_.t[j].line;
    std::size_t after_params = m_.skip_balanced(j, "(", ")");

    // Between the parameter list and the body: cv/ref qualifiers, noexcept
    // (with or without arguments), attributes, trailing return types, and
    // constructor initializer lists.
    std::size_t k = after_params;
    while (k < m_.size()) {
      const std::string& s = m_.at(k);
      if (s == "{") {
        if (record) record_function(simple, written, name_line, k, scope);
        return m_.skip_balanced(k, "{", "}");
      }
      if (s == ";") return k + 1;
      if (s == "=") return m_.skip_to_semicolon(k);  // = default / delete / 0
      if (s == ":") {  // constructor initializer list
        std::size_t b = k + 1;
        int paren = 0, brace = 0;
        while (b < m_.size()) {
          const std::string& u = m_.at(b);
          if (u == "(") ++paren;
          if (u == ")") --paren;
          if (u == "{" && paren == 0 && brace == 0) break;
          if (u == "{") ++brace;
          if (u == "}") --brace;
          if (u == ";") return b + 1;  // not an initializer list after all
          ++b;
        }
        if (b >= m_.size()) return b;
        if (record) record_function(simple, written, name_line, b, scope);
        return m_.skip_balanced(b, "{", "}");
      }
      if (s == "(") {  // noexcept(...), or a second declarator's initializer
        after_params = m_.skip_balanced(k, "(", ")");
        k = after_params;
        continue;
      }
      if (s == "<") {
        k = m_.skip_angles(k);
        continue;
      }
      if (s == "," || s == "}") return m_.skip_to_semicolon(k);
      ++k;
    }
    return k;
  }

  void record_function(const std::string& simple, const std::string& written,
                       int line, std::size_t open_brace_token,
                       const std::vector<std::string>& scope) {
    Function fn;
    fn.name = simple;
    std::string qual;
    for (const std::string& s : scope) {
      if (!s.empty()) qual += s + "::";
    }
    // An out-of-line `Class::name` already carries its qualifier.
    fn.qualified = qual + written;
    fn.line = line;
    const std::size_t close = m_.skip_balanced(open_brace_token, "{", "}");
    fn.body_begin = m_.t[open_brace_token].pos + 1;
    fn.body_end =
        close - 1 < m_.size() ? m_.t[close - 1].pos : m_.text.size();
    parse_body(fn, open_brace_token + 1, close - 1);
    file_.functions.push_back(std::move(fn));
  }

  [[nodiscard]] std::size_t text_size() const { return m_.text.size(); }

  // --- function bodies -----------------------------------------------------

  void parse_body(Function& fn, std::size_t i, std::size_t end) {
    std::vector<std::size_t> brace_stack;  // token indices of open braces
    while (i < end) {
      const std::string& s = m_.at(i);
      if (s == "{") {
        brace_stack.push_back(i);
        ++i;
        continue;
      }
      if (s == "}") {
        if (!brace_stack.empty()) brace_stack.pop_back();
        ++i;
        continue;
      }
      if (s == "while" || s == "do" || s == "for") {
        i = parse_loop(fn, i);
        continue;
      }
      if (s == "lock_guard" || s == "unique_lock" || s == "scoped_lock") {
        i = parse_lock(fn, i, brace_stack);
        continue;
      }
      if (m_.ident(i) && m_.at(i + 1) == "(" && !is_excluded_name(s)) {
        CallSite call;
        call.name = s;
        call.pos = m_.t[i].pos;
        call.line = m_.t[i].line;
        call.qualified = s;
        for (std::size_t k = i; k >= 2 && m_.at(k - 1) == "::"; k -= 2) {
          if (!m_.ident(k - 2)) break;
          call.qualified = m_.at(k - 2) + "::" + call.qualified;
        }
        fn.calls.push_back(std::move(call));
        ++i;
        continue;
      }
      ++i;
    }
  }

  // Records while / do / unbounded-for loops; returns the index just past
  // the loop header (the body is walked by the main loop so nested calls
  // and locks are still collected).
  std::size_t parse_loop(Function& fn, std::size_t i) {
    const std::string keyword = m_.at(i);
    std::size_t after_cond = i + 1;
    bool record = true;
    if (keyword == "do") {
      if (m_.at(i + 1) != "{") return i + 1;  // `do` identifier elsewhere
    } else {
      if (m_.at(i + 1) != "(") return i + 1;
      after_cond = m_.skip_balanced(i + 1, "(", ")");
      if (keyword == "while" && m_.at(after_cond) == ";") {
        return after_cond + 1;  // do-while tail; the `do` recorded the loop
      }
      if (keyword == "for") {
        // Unbounded only: `for (init; ; step)` — an empty condition between
        // the two top-level semicolons.
        int depth = 0, semis = 0;
        bool cond_empty = true;
        for (std::size_t k = i + 1; k + 1 < after_cond; ++k) {
          const std::string& u = m_.at(k);
          if (u == "(") ++depth;
          if (u == ")") --depth;
          if (depth != 1) continue;
          if (u == ";") {
            ++semis;
            continue;
          }
          if (semis == 1) cond_empty = false;
        }
        record = (semis == 2 && cond_empty);
      }
    }
    // Body span: a block, or a single statement.
    std::size_t body_start = keyword == "do" ? i + 1 : after_cond;
    std::size_t body_close;
    if (m_.at(body_start) == "{") {
      body_close = m_.skip_balanced(body_start, "{", "}");
    } else {
      body_close = m_.skip_to_semicolon(body_start);
    }
    if (record) {
      LoopSite loop;
      loop.span_begin = m_.t[i].pos;
      loop.span_end = body_close - 1 < m_.size()
                          ? m_.t[body_close - 1].pos + m_.at(body_close - 1).size()
                          : text_size();
      loop.line = m_.t[i].line;
      loop.keyword = keyword;
      fn.loops.push_back(std::move(loop));
    }
    return keyword == "do" ? body_start : after_cond;
  }

  std::size_t parse_lock(Function& fn, std::size_t i,
                         const std::vector<std::size_t>& brace_stack) {
    std::size_t j = i + 1;
    if (m_.at(j) == "<") j = m_.skip_angles(j);
    if (!m_.ident(j)) return i + 1;  // e.g. a type mention without a variable
    ++j;                             // the guard variable name
    if (m_.at(j) != "(" && m_.at(j) != "{") return i + 1;
    const std::string open = m_.at(j);
    const std::string close = open == "(" ? ")" : "}";
    const std::size_t args_end = m_.skip_balanced(j, open.c_str(), close.c_str());
    // The enclosing lexical scope pins the guard's lifetime.
    std::size_t scope_end = fn.body_end;
    if (!brace_stack.empty()) {
      const std::size_t open_tok = brace_stack.back();
      const std::size_t close_tok = m_.skip_balanced(open_tok, "{", "}");
      if (close_tok - 1 < m_.size()) scope_end = m_.t[close_tok - 1].pos;
    }
    // One LockSite per top-level argument (std::scoped_lock takes several).
    std::string arg;
    int depth = 0;
    auto flush = [&](std::size_t /*at*/) {
      const std::string mutex = normalize_mutex(arg);
      if (!mutex.empty() && mutex != "std::adopt_lock" &&
          mutex != "std::defer_lock" && mutex != "std::try_to_lock") {
        LockSite lock;
        lock.mutex = mutex;
        lock.pos = m_.t[i].pos;
        lock.scope_end = scope_end;
        lock.line = m_.t[i].line;
        fn.locks.push_back(std::move(lock));
      }
      arg.clear();
    };
    for (std::size_t k = j + 1; k + 1 < args_end; ++k) {
      const std::string& u = m_.at(k);
      if (u == "(" || u == "[" || u == "{") ++depth;
      if (u == ")" || u == "]" || u == "}") --depth;
      if (u == "," && depth == 0) {
        flush(k);
        continue;
      }
      arg += u;
    }
    flush(args_end);
    return args_end;
  }
};

// --- regex site collection ---------------------------------------------

struct SourcePattern {
  std::regex re;
  std::string category;
};

const std::vector<SourcePattern>& source_patterns() {
  static const std::vector<SourcePattern> kPatterns = [] {
    std::vector<SourcePattern> p;
    auto add = [&p](const char* re, const char* cat) {
      p.push_back({std::regex(re), cat});
    };
    add(R"(\b(?:system_clock|steady_clock|high_resolution_clock)\b)", "clock");
    add(R"(\b[A-Za-z_]\w*::now\s*\()", "clock");
    add(R"(\btime\s*\()", "clock");
    add(R"(\b(?:clock_gettime|gettimeofday|localtime|gmtime)\s*\()", "clock");
    add(R"(\b(?:rand|srand|getrandom)\s*\()", "random");
    add(R"(\brandom_device\b)", "random");
    add(R"(\bmt19937\w*\b)", "random");
    add(R"(\b(?:getenv|secure_getenv)\s*\()", "env");
    add(R"(\bsetlocale\s*\()", "locale");
    add(R"(\bstd::locale\b)", "locale");
    return p;
  }();
  return kPatterns;
}

void collect_sources(const std::string& text, Function& fn) {
  const std::string body =
      text.substr(fn.body_begin, fn.body_end - fn.body_begin);
  for (const SourcePattern& sp : source_patterns()) {
    for (std::sregex_iterator it(body.begin(), body.end(), sp.re), end;
         it != end; ++it) {
      SourceSite site;
      site.token = it->str();
      while (!site.token.empty() &&
             (site.token.back() == '(' ||
              std::isspace(static_cast<unsigned char>(site.token.back())) !=
                  0)) {
        site.token.pop_back();
      }
      site.category = sp.category;
      site.pos = fn.body_begin + static_cast<std::size_t>(it->position());
      site.line = line_at(text, site.pos);
      fn.sources.push_back(std::move(site));
    }
  }
  std::sort(fn.sources.begin(), fn.sources.end(),
            [](const SourceSite& a, const SourceSite& b) {
              return a.pos < b.pos;
            });
}

// Extracts `// ldlb: guarded_by(<mutex>)` annotations. The grammar
// mirrors the suppression comments: trailing the field declaration or on
// the comment line directly above it.
void collect_guarded_fields(FileModel& file,
                            std::vector<srcmodel::Diagnostic>& meta) {
  static const std::regex kGuard(
      R"(ldlb:\s*guarded_by\(\s*([A-Za-z0-9_:.&>\-]+)\s*\))");
  static const std::regex kMarker(R"(guarded_by)");
  static const std::regex kField(R"(([A-Za-z_]\w*)\s*[;={(])");

  std::vector<std::size_t> starts{0};
  const std::string& text = file.stripped.text;
  for (std::size_t k = 0; k < text.size(); ++k) {
    if (text[k] == '\n') starts.push_back(k + 1);
  }
  auto line_text = [&](int ln) -> std::string {
    if (ln < 1 || ln > static_cast<int>(starts.size())) return {};
    const std::size_t from = starts[static_cast<std::size_t>(ln - 1)];
    const std::size_t to = ln < static_cast<int>(starts.size())
                               ? starts[static_cast<std::size_t>(ln)]
                               : text.size();
    return text.substr(from, to - from);
  };
  auto has_code = [&](int ln) {
    const std::string t = line_text(ln);
    return std::any_of(t.begin(), t.end(), [](char c) {
      return std::isspace(static_cast<unsigned char>(c)) == 0;
    });
  };

  for (const srcmodel::Comment& comment : file.stripped.comments) {
    if (!std::regex_search(comment.text, kMarker)) continue;
    std::smatch m;
    if (!std::regex_search(comment.text, m, kGuard)) {
      meta.push_back({file.path, comment.line, "bad-annotation",
                      "malformed guarded_by annotation; expected "
                      "'ldlb: guarded_by(<mutex>)'"});
      continue;
    }
    int target = 0;
    if (comment.code_before) {
      target = comment.line;
    } else {
      for (int ln = comment.line + 1; ln <= static_cast<int>(starts.size());
           ++ln) {
        if (has_code(ln)) {
          target = ln;
          break;
        }
      }
    }
    std::smatch fm;
    const std::string decl = line_text(target);
    if (target == 0 || !std::regex_search(decl, fm, kField)) {
      meta.push_back({file.path, comment.line, "bad-annotation",
                      "guarded_by(" + m[1].str() +
                          ") has no field declaration to attach to"});
      continue;
    }
    GuardedField gf;
    gf.field = fm[1].str();
    gf.mutex = normalize_mutex(m[1].str());
    gf.line = target;
    file.guarded_fields.push_back(std::move(gf));
  }
}

std::string module_of(const std::string& rel_path) {
  static const std::string kPrefix = "src/ldlb/";
  std::string sub = rel_path;
  if (sub.rfind(kPrefix, 0) == 0) sub = sub.substr(kPrefix.size());
  const std::size_t slash = sub.find('/');
  return slash == std::string::npos ? std::string("(top)")
                                    : sub.substr(0, slash);
}

void collect_includes(FileModel& file, const std::string& original) {
  // The stripper blanks the include *path* (it is a string literal), so
  // the directive is detected in the stripped text and the path read from
  // the original line — a commented-out #include never counts.
  static const std::regex kDirective(R"(^\s*#\s*include\s*\")");
  static const std::regex kPath(R"(#\s*include\s*\"([^\"]+)\")");
  std::istringstream stripped_lines(file.stripped.text);
  std::istringstream original_lines(original);
  std::string sline, oline;
  int line_no = 0;
  while (std::getline(stripped_lines, sline)) {
    std::getline(original_lines, oline);
    ++line_no;
    if (!std::regex_search(sline, kDirective)) continue;
    std::smatch m;
    if (!std::regex_search(oline, m, kPath)) continue;
    std::string target = m[1].str();
    if (target.rfind("ldlb/", 0) == 0) {
      target = "src/" + target;
    } else if (target.find('/') == std::string::npos) {
      // Same-directory relative include.
      const std::size_t slash = file.path.find_last_of('/');
      if (slash != std::string::npos) {
        target = file.path.substr(0, slash + 1) + target;
      }
    }
    file.includes.push_back({std::move(target), line_no});
  }
}

}  // namespace

int line_at(const std::string& text, std::size_t pos) {
  pos = std::min(pos, text.size());
  return 1 + static_cast<int>(
                 std::count(text.begin(),
                            text.begin() + static_cast<std::ptrdiff_t>(pos),
                            '\n'));
}

std::string normalize_mutex(std::string name) {
  std::string out;
  for (char c : name) {
    if (std::isspace(static_cast<unsigned char>(c)) == 0) out += c;
  }
  if (!out.empty() && out.front() == '&') out.erase(0, 1);
  if (out.rfind("this->", 0) == 0) out.erase(0, 6);
  if (out.rfind("this.", 0) == 0) out.erase(0, 5);
  return out;
}

FileModel index_file(const std::string& rel_path, const std::string& content,
                     std::vector<srcmodel::Diagnostic>& meta) {
  FileModel file;
  file.path = rel_path;
  file.module = module_of(rel_path);
  file.stripped = srcmodel::strip_source(content);
  file.annotations = srcmodel::parse_allow_annotations(
      file.stripped, rel_path, "ldlb-analyze", pass_names(), meta);
  collect_includes(file, content);
  collect_guarded_fields(file, meta);

  const std::vector<Token> tokens = tokenize(file.stripped.text);
  Indexer indexer(file, tokens);
  indexer.run();
  for (Function& fn : file.functions) {
    collect_sources(file.stripped.text, fn);
  }
  return file;
}

SourceModel build_model(const std::filesystem::path& root,
                        const std::vector<std::string>& rel_paths) {
  SourceModel model;
  for (const std::string& rel : rel_paths) {
    model.files.push_back(
        index_file(rel, srcmodel::read_file(root / rel), model.meta));
  }
  for (int f = 0; f < static_cast<int>(model.files.size()); ++f) {
    const FileModel& file = model.files[static_cast<std::size_t>(f)];
    for (int i = 0; i < static_cast<int>(file.functions.size()); ++i) {
      model.by_name[file.functions[static_cast<std::size_t>(i)].name]
          .push_back({f, i});
    }
  }
  return model;
}

}  // namespace ldlb::analyze
