// Comment/string stripping and suppression-annotation parsing shared by
// ldlb_lint and ldlb_analyze. The stripper keeps the output exactly as
// long as the input and never touches newlines, so byte offsets and line
// numbers in the stripped text match the original file.

#include <algorithm>
#include <cctype>
#include <fstream>
#include <regex>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>

#include "srcmodel.hpp"

namespace ldlb::srcmodel {

namespace {

bool is_ident(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_space(char c) { return std::isspace(static_cast<unsigned char>(c)) != 0; }

// True when position `i` sits on the opening '"' of a raw string literal,
// i.e. the preceding chars form R, uR, UR, LR, or u8R starting a token.
bool raw_string_opens_at(std::string_view src, std::size_t i,
                         std::size_t* prefix_start) {
  if (i == 0 || src[i] != '"' || src[i - 1] != 'R') return false;
  std::size_t j = i - 1;  // points at 'R'
  if (j >= 2 && src[j - 2] == 'u' && src[j - 1] == '8') {
    j -= 2;
  } else if (j >= 1 && (src[j - 1] == 'u' || src[j - 1] == 'U' ||
                        src[j - 1] == 'L')) {
    j -= 1;
  }
  if (j > 0 && is_ident(src[j - 1])) return false;  // part of a longer token
  *prefix_start = j;
  return true;
}

}  // namespace

Stripped strip_source(std::string_view src) {
  Stripped result;
  std::string out(src);
  const std::size_t n = src.size();
  int line = 1;
  std::size_t line_start = 0;

  auto blank = [&out](std::size_t from, std::size_t to) {
    for (std::size_t k = from; k < to && k < out.size(); ++k) {
      if (out[k] != '\n') out[k] = ' ';
    }
  };
  auto code_before = [&](std::size_t pos) {
    for (std::size_t k = line_start; k < pos; ++k) {
      if (!is_space(out[k])) return true;
    }
    return false;
  };

  std::size_t i = 0;
  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      line_start = ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      const std::size_t start = i;
      while (i < n && src[i] != '\n') ++i;
      result.comments.push_back(
          {line, code_before(start), std::string(src.substr(start, i - start))});
      blank(start, i);
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      const std::size_t start = i;
      const int start_line = line;
      const bool has_code = code_before(start);
      i += 2;
      while (i < n && !(i + 1 < n && src[i] == '*' && src[i + 1] == '/')) {
        if (src[i] == '\n') {
          ++line;
          line_start = i + 1;
        }
        ++i;
      }
      i = std::min(n, i + 2);  // consume the closing */
      result.comments.push_back(
          {start_line, has_code, std::string(src.substr(start, i - start))});
      blank(start, i);
      continue;
    }
    std::size_t prefix_start = 0;
    if (c == '"' && raw_string_opens_at(src, i, &prefix_start)) {
      // R"delim( ... )delim" — blank everything between the outer quotes.
      const std::size_t quote = i;
      std::size_t d = i + 1;
      while (d < n && src[d] != '(') ++d;
      const std::string close =
          ")" + std::string(src.substr(i + 1, d - (i + 1))) + "\"";
      std::size_t end = src.find(close, d);
      end = (end == std::string_view::npos) ? n : end + close.size();
      blank(quote, end);
      line += static_cast<int>(
          std::count(src.begin() + static_cast<std::ptrdiff_t>(quote),
                     src.begin() + static_cast<std::ptrdiff_t>(end), '\n'));
      i = end;
      // line_start only matters for code_before; a multi-line raw string
      // leaves blanked text on the current line, which reads as no-code.
      continue;
    }
    if (c == '"' || c == '\'') {
      if (c == '\'' && i > 0 && is_ident(src[i - 1])) {
        ++i;  // digit separator as in 1'000'000
        continue;
      }
      const char quote = c;
      const std::size_t start = i++;
      while (i < n && src[i] != quote && src[i] != '\n') {
        i += (src[i] == '\\' && i + 1 < n) ? 2 : 1;
      }
      if (i < n && src[i] == quote) ++i;
      blank(start + 1, i > start + 1 ? i - 1 : start + 1);
      continue;
    }
    ++i;
  }
  result.text = std::move(out);
  return result;
}

std::vector<Annotation> parse_allow_annotations(
    const Stripped& stripped, const std::string& path,
    const std::string& marker, const std::vector<std::string>& valid_names,
    std::vector<Diagnostic>& out) {
  // Line start offsets of the stripped text, for next-code-line targeting.
  std::vector<std::size_t> starts{0};
  for (std::size_t k = 0; k < stripped.text.size(); ++k) {
    if (stripped.text[k] == '\n') starts.push_back(k + 1);
  }
  auto line_has_code = [&](int ln) {
    if (ln < 1 || ln > static_cast<int>(starts.size())) return false;
    const std::size_t from = starts[static_cast<std::size_t>(ln - 1)];
    const std::size_t to = ln < static_cast<int>(starts.size())
                               ? starts[static_cast<std::size_t>(ln)]
                               : stripped.text.size();
    for (std::size_t k = from; k < to; ++k) {
      if (!is_space(stripped.text[k])) return true;
    }
    return false;
  };

  const std::regex allow(marker + R"(:\s*allow\(([A-Za-z0-9_-]+)\)\s*(:\s*(.*))?)");
  // A word boundary after the marker keeps "ldlb-lint" from also claiming
  // every "ldlb-lint-something" comment, while still catching a marker the
  // author misspelled the tail of (missing colon, wrong verb).
  const std::regex present(marker + R"(\b)");

  std::vector<Annotation> annotations;
  for (const Comment& comment : stripped.comments) {
    if (!std::regex_search(comment.text, present)) continue;
    std::smatch m;
    if (!std::regex_search(comment.text, m, allow)) {
      out.push_back({path, comment.line, "bad-annotation",
                     "malformed " + marker + " annotation; expected '" +
                         marker + ": allow(<rule>): <reason>'"});
      continue;
    }
    std::string rule = m[1].str();
    std::string reason = m[3].matched ? m[3].str() : std::string();
    // Trim a block comment's closing token and surrounding whitespace.
    if (auto close = reason.find("*/"); close != std::string::npos) {
      reason.erase(close);
    }
    while (!reason.empty() && is_space(reason.back())) reason.pop_back();
    if (reason.empty()) {
      out.push_back({path, comment.line, "bad-annotation",
                     marker + ": allow(" + rule +
                         ") has no reason; every suppression must say why "
                         "the site is safe"});
      continue;
    }
    if (std::find(valid_names.begin(), valid_names.end(), rule) ==
        valid_names.end()) {
      out.push_back({path, comment.line, "unknown-rule",
                     "allow(" + rule + ") names an unknown rule"});
      continue;
    }
    Annotation a;
    a.line = comment.line;
    a.rule = std::move(rule);
    a.reason = std::move(reason);
    if (comment.code_before) {
      a.target_line = comment.line;
    } else {
      // First following line with code; blank and comment-only lines are
      // skipped so an explanation may span several comment lines.
      for (int ln = comment.line + 1; ln <= static_cast<int>(starts.size());
           ++ln) {
        if (line_has_code(ln)) {
          a.target_line = ln;
          break;
        }
      }
    }
    annotations.push_back(std::move(a));
  }
  return annotations;
}

std::string format(const Diagnostic& d) {
  return d.path + ":" + std::to_string(d.line) + ": [" + d.rule + "] " +
         d.message;
}

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read " + path.string());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::vector<std::string> list_ldlb_sources(const std::filesystem::path& root) {
  const std::filesystem::path tree = root / "src" / "ldlb";
  if (!std::filesystem::is_directory(tree)) {
    throw std::runtime_error("no src/ldlb tree under " + root.string());
  }
  std::vector<std::string> rel_paths;
  for (const auto& entry :
       std::filesystem::recursive_directory_iterator(tree)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext != ".hpp" && ext != ".cpp") continue;
    rel_paths.push_back(
        std::filesystem::relative(entry.path(), root).generic_string());
  }
  std::sort(rel_paths.begin(), rel_paths.end());
  return rel_paths;
}

}  // namespace ldlb::srcmodel
