// Shared source model for the in-tree static tools (ldlb_lint and
// ldlb_analyze): a line-preserving C++ lexer that strips comments and
// literals, plus the common `<marker>: allow(<name>): <reason>` suppression
// annotation grammar with stale-suppression bookkeeping.
//
// Both tools compile against this one tokenizer so a lexer fix (raw
// strings, digit separators, block comments) lands in the linter and the
// analyzer at once; the tools differ only in their marker string
// ("ldlb-lint" vs "ldlb-analyze") and in the rule/pass names they accept.
#pragma once

#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

namespace ldlb::srcmodel {

struct Diagnostic {
  std::string path;  // repo-root-relative, forward slashes
  int line = 0;
  std::string rule;  // rule name (lint) or pass name (analyze)
  std::string message;
};

/// "path:line: [rule] message" — the exact format tests assert on.
[[nodiscard]] std::string format(const Diagnostic& d);

/// One comment found while stripping; `code_before` is true when the line
/// carries code before the comment starts (trailing-comment position).
struct Comment {
  int line = 0;
  bool code_before = false;
  std::string text;
};

/// Source with comments and literal *contents* blanked to spaces. Line
/// structure is preserved exactly, so pattern hits report real lines.
struct Stripped {
  std::string text;
  std::vector<Comment> comments;
};

[[nodiscard]] Stripped strip_source(std::string_view source);

/// A parsed `<marker>: allow(<name>): <reason>` annotation.
struct Annotation {
  int line = 0;         // line of the comment itself
  int target_line = 0;  // line it suppresses (0 when no code line follows)
  std::string rule;
  std::string reason;
  bool used = false;  // set when it suppressed at least one diagnostic
};

/// Extracts `<marker>: allow(<name>): <reason>` annotations from
/// `stripped.comments`. Malformed annotations (missing reason) and names
/// not in `valid_names` are reported into `out` as bad-annotation /
/// unknown-rule diagnostics and dropped. A trailing annotation targets its
/// own line; a comment-line annotation targets the next line with code
/// (blank and comment-only lines are skipped).
[[nodiscard]] std::vector<Annotation> parse_allow_annotations(
    const Stripped& stripped, const std::string& path,
    const std::string& marker, const std::vector<std::string>& valid_names,
    std::vector<Diagnostic>& out);

/// Reads a file fully; throws std::runtime_error when unreadable.
[[nodiscard]] std::string read_file(const std::filesystem::path& path);

/// Every .hpp/.cpp under <root>/src/ldlb as root-relative forward-slash
/// paths, sorted. Throws std::runtime_error when the tree is missing.
[[nodiscard]] std::vector<std::string> list_ldlb_sources(
    const std::filesystem::path& root);

}  // namespace ldlb::srcmodel
