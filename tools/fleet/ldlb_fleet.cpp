// Driver for the crash-tolerant adversary fleet (fault/fleet.hpp).
//
//   ldlb_fleet --delta <d> --snapshot <path> [options]
//
//   --workers <n>            worker processes (0 = in-process engine)
//   --print                  write the final certificate text to stdout
//   --report                 write the FleetReport to stderr
//   --resume                 keep an existing snapshot (default: start fresh)
//   --kill-every-level <s>   chaos: SIGKILL one seed-chosen worker as each
//                            level's requests go out (seed logged to stderr)
//   --abort-after-level <L>  crash-stop right after level L is checkpointed
//                            (exit 3; re-run with --resume to finish)
//   --max-respawns <n>       respawn budget per level (default 3)
//
// The CI fleet-determinism stage byte-compares --print output across
// worker counts and kill histories; exit 0 = certified, 3 = injected
// crash-stop fired (resumable), anything else = real failure.
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>

#include "ldlb/core/certificate_io.hpp"
#include "ldlb/fault/fleet.hpp"
#include "ldlb/matching/seq_color_packing.hpp"
#include "ldlb/util/ipc.hpp"
#include "ldlb/util/rng.hpp"

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " --delta <d> --snapshot <path> [--workers <n>] [--print]"
               " [--report] [--resume] [--kill-every-level <seed>]"
               " [--abort-after-level <L>] [--max-respawns <n>]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ldlb;

  int delta = 0;
  int workers = 2;
  std::string snapshot;
  bool print = false;
  bool report_wanted = false;
  bool resume = false;
  bool chaos = false;
  std::uint64_t chaos_seed = 0;
  int abort_after_level = -1;
  int max_respawns = 3;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        std::exit(usage(argv[0]));
      }
      return argv[++i];
    };
    if (arg == "--delta") {
      delta = std::atoi(value());
    } else if (arg == "--workers") {
      workers = std::atoi(value());
    } else if (arg == "--snapshot") {
      snapshot = value();
    } else if (arg == "--print") {
      print = true;
    } else if (arg == "--report") {
      report_wanted = true;
    } else if (arg == "--resume") {
      resume = true;
    } else if (arg == "--kill-every-level") {
      chaos = true;
      chaos_seed = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--abort-after-level") {
      abort_after_level = std::atoi(value());
    } else if (arg == "--max-respawns") {
      max_respawns = std::atoi(value());
    } else {
      std::cerr << "unknown option " << arg << "\n";
      return usage(argv[0]);
    }
  }
  if (delta < 2 || workers < 0 || snapshot.empty()) return usage(argv[0]);

  SnapshotStore store{snapshot};
  if (!resume) store.remove();

  const AlgorithmFactory factory = [delta]() {
    return std::make_unique<SeqColorPacking>(delta);
  };

  FleetOptions options;
  options.workers = workers;
  options.max_respawns_per_level = max_respawns;

  Rng rng{chaos_seed};
  if (chaos) {
    std::cerr << "chaos: SIGKILL one worker per level, seed " << chaos_seed
              << "\n";
    options.on_level = [&rng](int level, const std::vector<pid_t>& pids) {
      if (pids.empty()) return;
      const auto victim = static_cast<std::size_t>(
          rng.next_u64() % static_cast<std::uint64_t>(pids.size()));
      std::cerr << "chaos: level " << level << ": killing worker pid "
                << pids[victim] << "\n";
      ipc::kill_process(pids[victim]);
    };
  }
  if (abort_after_level >= 0) {
    options.on_checkpoint = crash_at_level(abort_after_level);
  }

  FleetReport report;
  try {
    const LowerBoundCertificate cert =
        run_adversary_fleet(factory, delta, store, options, &report);
    if (report_wanted) std::cerr << report.to_string() << "\n";
    if (print) {
      std::cout << certificate_to_string(cert);
    } else {
      std::cout << "certified levels 0.." << cert.certified_radius()
                << " for delta " << delta << " with " << workers
                << " workers (" << report.respawns << " respawns)\n";
    }
    return 0;
  } catch (const FaultInjected& e) {
    if (report_wanted) std::cerr << report.to_string() << "\n";
    std::cerr << "crash-stop: " << e.what() << "\n";
    return 3;
  } catch (const Error& e) {
    if (report_wanted) std::cerr << report.to_string() << "\n";
    std::cerr << "fleet run failed (" << to_string(report.status)
              << "): " << e.what() << "\n";
    return 1;
  }
}
