// Driver for the crash-tolerant adversary fleet (fault/fleet.hpp): the
// pipe coordinator from PR 6, plus the two halves of the socket fleet
// (worker daemon / connecting coordinator). See --help for the flags and
// the exit-code contract; the CI fleet-determinism stages byte-compare
// --print output across worker counts, transports and kill histories.
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "ldlb/core/certificate_io.hpp"
#include "ldlb/fault/fleet.hpp"
#include "ldlb/matching/seq_color_packing.hpp"
#include "ldlb/recover/cert_log.hpp"
#include "ldlb/recover/snapshot_store.hpp"
#include "ldlb/util/ipc.hpp"
#include "ldlb/util/net.hpp"
#include "ldlb/util/rng.hpp"

namespace {

void help(std::ostream& os, const char* argv0) {
  os << "usage: " << argv0
     << " --delta <d> --snapshot <path> [options]   coordinator (pipe fleet)\n"
     << "       " << argv0
     << " --delta <d> --log <path> [options]        coordinator (streaming\n"
     << "                                  certificate log instead of snapshot)\n"
     << "       " << argv0
     << " --delta <d> --snapshot <path> --connect <host:port[,host:port...]>\n"
     << "                                  [options]   coordinator (socket fleet)\n"
     << "       " << argv0
     << " --delta <d> --listen <port> [options]       worker daemon\n"
     << "\n"
     << "coordinator options:\n"
     << "  --workers <n>            worker slots (0 = in-process engine; default 2)\n"
     << "  --print                  write the final certificate text to stdout\n"
     << "  --report                 write the FleetReport to stderr\n"
     << "  --log <path>             checkpoint into an append-only streaming\n"
     << "                           certificate log (recover/cert_log) instead of\n"
     << "                           the rewrite-whole-file snapshot store\n"
     << "  --resume                 keep an existing store (default: start fresh)\n"
     << "  --no-ball-ship           do not ship the coordinator's interned ball\n"
     << "                           table to (re)spawned workers (cold starts)\n"
     << "  --kill-every-level <s>   chaos: violently sever one seed-chosen worker\n"
     << "                           link as each level's requests go out (SIGKILL\n"
     << "                           for pipe workers, abortive RST for sockets)\n"
     << "  --abort-after-level <L>  crash-stop right after level L is checkpointed\n"
     << "                           (exit 3; re-run with --resume to finish)\n"
     << "  --max-respawns <n>       respawn budget per level (default 3)\n"
     << "  --no-degrade             fail fast instead of walking the degradation\n"
     << "                           ladder (socket -> pipe -> in-process)\n"
     << "  --connect-timeout <s>    socket: seconds per connect+handshake (default 5)\n"
     << "  --stale-after <s>        socket: reply wait without even a heartbeat\n"
     << "                           before the worker counts as stale (default 30)\n"
     << "\n"
     << "daemon options:\n"
     << "  --listen <port>          serve fleet workers on this TCP port (0 picks\n"
     << "                           an ephemeral port; the bound port is printed as\n"
     << "                           'ldlb_fleet: listening on port N' and flushed)\n"
     << "  --heartbeat <s>          idle heartbeat interval (default 0.25)\n"
     << "  --max-connections <n>    exit 0 after serving n connections (default:\n"
     << "                           serve until killed)\n"
     << "\n"
     << "exit codes:\n"
     << "  0  certificate produced (or daemon finished cleanly)\n"
     << "  1  real failure (classified in the --report output)\n"
     << "  2  usage error\n"
     << "  3  injected crash-stop fired; the store is resumable (--resume)\n"
     << "  4  remote transport exhausted under --no-degrade: every socket\n"
     << "     worker's respawn budget was spent and degradation was refused\n";
}

int usage(const char* argv0) {
  help(std::cerr, argv0);
  return 2;
}

// "host:port,host:port" -> endpoints; empty on malformed input.
std::vector<ldlb::RemoteEndpoint> parse_remotes(const std::string& spec) {
  std::vector<ldlb::RemoteEndpoint> remotes;
  std::size_t begin = 0;
  while (begin <= spec.size()) {
    std::size_t end = spec.find(',', begin);
    if (end == std::string::npos) end = spec.size();
    const std::string one = spec.substr(begin, end - begin);
    const std::size_t colon = one.rfind(':');
    if (one.empty() || colon == std::string::npos || colon == 0 ||
        colon + 1 >= one.size()) {
      return {};
    }
    char* stop = nullptr;
    const long port = std::strtol(one.c_str() + colon + 1, &stop, 10);
    if (stop == nullptr || *stop != '\0' || port < 1 || port > 65535) {
      return {};
    }
    remotes.push_back(
        {one.substr(0, colon), static_cast<int>(port)});
    begin = end + 1;
  }
  return remotes;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ldlb;

  int delta = 0;
  int workers = 2;
  std::string snapshot;
  std::string log_path;
  std::string connect_spec;
  bool print = false;
  bool report_wanted = false;
  bool resume = false;
  bool chaos = false;
  bool degrade = true;
  bool ball_ship = true;
  std::uint64_t chaos_seed = 0;
  int abort_after_level = -1;
  int max_respawns = 3;
  double connect_timeout = 5.0;
  double stale_after = 30.0;
  int listen_port = -1;
  double heartbeat = 0.25;
  long long max_connections = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        std::exit(usage(argv[0]));
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      help(std::cout, argv[0]);
      return 0;
    } else if (arg == "--delta") {
      delta = std::atoi(value());
    } else if (arg == "--workers") {
      workers = std::atoi(value());
    } else if (arg == "--snapshot") {
      snapshot = value();
    } else if (arg == "--log") {
      log_path = value();
    } else if (arg == "--no-ball-ship") {
      ball_ship = false;
    } else if (arg == "--connect") {
      connect_spec = value();
    } else if (arg == "--listen") {
      listen_port = std::atoi(value());
    } else if (arg == "--heartbeat") {
      heartbeat = std::atof(value());
    } else if (arg == "--max-connections") {
      max_connections = std::atoll(value());
    } else if (arg == "--print") {
      print = true;
    } else if (arg == "--report") {
      report_wanted = true;
    } else if (arg == "--resume") {
      resume = true;
    } else if (arg == "--no-degrade") {
      degrade = false;
    } else if (arg == "--kill-every-level") {
      chaos = true;
      chaos_seed = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--abort-after-level") {
      abort_after_level = std::atoi(value());
    } else if (arg == "--max-respawns") {
      max_respawns = std::atoi(value());
    } else if (arg == "--connect-timeout") {
      connect_timeout = std::atof(value());
    } else if (arg == "--stale-after") {
      stale_after = std::atof(value());
    } else {
      std::cerr << "unknown option " << arg << "\n";
      return usage(argv[0]);
    }
  }
  if (delta < 2) return usage(argv[0]);

  const AlgorithmFactory factory = [delta]() {
    return std::make_unique<SeqColorPacking>(delta);
  };

  // Worker daemon mode: serve until killed (or --max-connections reached).
  if (listen_port >= 0) {
    try {
      net::Listener listener = net::Listener::on("127.0.0.1", listen_port);
      std::cout << "ldlb_fleet: listening on port " << listener.port()
                << std::endl;
      FleetDaemonOptions daemon_options;
      daemon_options.heartbeat_interval_seconds = heartbeat;
      daemon_options.max_connections = max_connections;
      return run_fleet_daemon(factory, delta, listener, daemon_options);
    } catch (const Error& e) {
      std::cerr << "daemon failed: " << e.what() << "\n";
      return 1;
    }
  }

  if (workers < 0 || (snapshot.empty() == log_path.empty())) {
    // Exactly one of --snapshot / --log picks the checkpoint store.
    return usage(argv[0]);
  }

  FleetOptions options;
  options.workers = workers;
  options.max_respawns_per_level = max_respawns;
  options.degrade = degrade;
  options.ship_ball_table = ball_ship;
  options.connect_timeout_seconds = connect_timeout;
  options.stale_after_seconds = stale_after;
  if (!connect_spec.empty()) {
    options.remotes = parse_remotes(connect_spec);
    if (options.remotes.empty()) {
      std::cerr << "malformed --connect '" << connect_spec << "'\n";
      return usage(argv[0]);
    }
  }

  std::unique_ptr<CheckpointStore> store_owner;
  if (!log_path.empty()) {
    store_owner = std::make_unique<CertificateLog>(log_path);
  } else {
    store_owner = std::make_unique<SnapshotStore>(snapshot);
  }
  CheckpointStore& store = *store_owner;
  if (!resume) store.remove();

  Rng rng{chaos_seed};
  if (chaos) {
    std::cerr << "chaos: sever one worker link per level, seed " << chaos_seed
              << "\n";
    options.on_level_drop = [&rng](int level, int slots,
                                   const std::function<void(int)>& drop) {
      if (slots <= 0) return;
      const int victim = static_cast<int>(
          rng.next_u64() % static_cast<std::uint64_t>(slots));
      std::cerr << "chaos: level " << level << ": dropping worker slot "
                << victim << "\n";
      drop(victim);
    };
  }
  if (abort_after_level >= 0) {
    options.on_checkpoint = crash_at_level(abort_after_level);
  }

  FleetReport report;
  try {
    const LowerBoundCertificate cert =
        run_adversary_fleet(factory, delta, store, options, &report);
    if (report_wanted) std::cerr << report.to_string() << "\n";
    if (print) {
      std::cout << certificate_to_string(cert);
    } else {
      std::cout << "certified levels 0.." << cert.certified_radius()
                << " for delta " << delta << " with " << workers
                << " workers over " << report.transport << " ("
                << report.respawns << " respawns)\n";
    }
    return 0;
  } catch (const FaultInjected& e) {
    if (report_wanted) std::cerr << report.to_string() << "\n";
    std::cerr << "crash-stop: " << e.what() << "\n";
    return 3;
  } catch (const WorkerLost& e) {
    if (report_wanted) std::cerr << report.to_string() << "\n";
    std::cerr << "fleet run failed (" << to_string(report.status)
              << "): " << e.what() << "\n";
    // The remote fleet running dry under --no-degrade is its own exit code
    // so CI can pin the refusal without parsing stderr.
    return report.transport == "socket" ? 4 : 1;
  } catch (const Error& e) {
    if (report_wanted) std::cerr << report.to_string() << "\n";
    std::cerr << "fleet run failed (" << to_string(report.status)
              << "): " << e.what() << "\n";
    return 1;
  }
}
